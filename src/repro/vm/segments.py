"""Segmented kernel snapshots — the fast-restore engine behind §6.5.

A full snapshot restore deserializes the *entire* kernel before every
run, even though a short test program mutates only a sliver of it.  This
module decomposes one kernel into **segments** — disjoint groups of
snapshot *roots* (the kernel shell, the arena, the clock, every
subsystem singleton, every namespace instance, every task) — pickles
each group into its own payload, and restores **in place**: dirty
groups are re-materialized from their payloads while clean groups keep
their live (still-pristine) objects.

Correctness rests on three pillars:

1. **Identity-stable roots.**  Restoring never replaces a root object;
   it overwrites the root's ``__dict__``/slots from the payload.  Every
   cross-segment reference goes through a persistent id resolved against
   the live root table, so clean segments can never see a stale object.
2. **Closure by construction.**  While taking the snapshot, a canonical
   walk records every mutable interior object each root's state reaches.
   Roots that *share* a mutable interior are merged into one group
   (union-find) and pickled with a common memo, so a payload is always a
   closed object graph — no restore order can split a shared object in
   two or revive a stale alias.
3. **Write-barrier dirty tracking.**  Traced kernel-memory writes are
   mapped (field address → group) through a hook on the arena; untraced
   structural mutations (nsproxy swaps, mount-table edits, task and
   namespace creation) are marked explicitly via
   ``Kernel.mark_dirty_object``.  An opt-in consistency check re-walks
   every root after an incremental restore and compares its canonical
   state against the snapshot reference, naming any divergent root — so
   speed is never silently traded for correctness (see
   ``MachineConfig.verify_restore``).

The canonical serialization (:func:`state_fingerprint`) is deliberately
*not* ``pickle.dumps``: pickle encodes sharing of **immutable** objects
(interned strings, small ints) as memo back-references, so two
semantically identical kernels — one restored in place, one freshly
unpickled — can produce different pickles.  The canonical form encodes
values, dict ordering, and aliasing of **mutable** objects only, which
is exactly the state the kernel model can observe.

Objects created *after* the snapshot (sockets, open files, unshared
namespaces) are not roots: writes to their addresses are ignored, and
they vanish when the containers that reference them are restored — the
same lifetime they had under full restore.
"""

from __future__ import annotations

import enum
import io
import pickle
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..faults.plan import (
    SITE_RESTORE_FAIL,
    SITE_SEGMENT_CORRUPT,
    FaultPlan,
    RestoreFaultInjected,
)
from ..kernel.kernel import Kernel
from ..kernel.memory import KCell, KDict, KList, KStruct

#: A stable, picklable identifier for one snapshot root.
RootKey = Tuple[Any, ...]

_PROTO = pickle.HIGHEST_PROTOCOL

#: Kernel attributes that are runtime plumbing or dedicated roots of
#: their own, not ``("sub", name)`` subsystem roots.
_KERNEL_NON_SUB_ATTRS = frozenset({
    "config", "bugs", "tracer", "syscall_seq", "_dirty_roots",
    "arena", "clock", "namespaces", "tasks", "init_nsproxy",
    "init_mnt_ns", "init_net", "init_task",
})

#: Root keys whose groups are restored on *every* reset: their state
#: mutates through untraced paths on effectively every run (virtual
#: time, the syscall sequence counter, the allocator watermark, and
#: conntrack's per-tick background churn).
_ALWAYS_DIRTY_KEYS = (
    ("kernel",), ("clock",), ("arena",), ("sub", "conntrack"),
)


class RestoreConsistencyError(AssertionError):
    """An incremental restore produced state diverging from the snapshot."""

    def __init__(self, offenders: List[RootKey]):
        self.offenders = offenders
        super().__init__(
            "segmented restore diverged from the full snapshot on root(s) "
            + ", ".join(repr(key) for key in offenders)
            + " — a mutation escaped dirty tracking")


def _capture_state(key: RootKey, obj: Any) -> Dict[str, Any]:
    """One root's restorable state, preserving ``__dict__`` key order."""
    if key == ("arena",):
        # The arena's only kernel state is the allocator watermark; the
        # tracer and dirty hook are live plumbing that must survive.
        return {"_next_addr": obj._next_addr}
    d = getattr(obj, "__dict__", None)
    if d is not None:
        state = dict(d)
        if key == ("kernel",):
            state["tracer"] = None
            state["_dirty_roots"] = set()
        return state
    state = {}
    for cls in type(obj).__mro__:
        for name in getattr(cls, "__slots__", ()):
            if name != "__dict__" and hasattr(obj, name):
                state[name] = getattr(obj, name)
    return state


def _apply_state(key: RootKey, obj: Any, state: Dict[str, Any]) -> None:
    """Overwrite *obj* in place from *state*, keeping its identity."""
    if key == ("arena",):
        obj._next_addr = state["_next_addr"]
        return
    d = getattr(obj, "__dict__", None)
    if d is not None:
        d.clear()
        d.update(state)
    else:
        for name, value in state.items():
            setattr(obj, name, value)


def _addresses_of(obj: Any) -> Tuple[int, ...]:
    """Every traced kernel-memory address owned by *obj*."""
    if isinstance(obj, KStruct):
        base = obj._base
        return tuple(base + off for off in type(obj)._offsets.values())
    if isinstance(obj, (KCell, KList, KDict)):
        return (obj._addr,)
    return ()


#: class -> whether instances own traced kernel memory.  The delta
#: pickler consults this for *every* object it serializes; a dict probe
#: beats two isinstance checks on the (overwhelmingly common) scalars.
_OWNS_ADDRESSES: Dict[type, bool] = {}


def _owns_addresses(cls: type) -> bool:
    owns = _OWNS_ADDRESSES.get(cls)
    if owns is None:
        owns = issubclass(cls, (KStruct, KCell, KList, KDict))
        _OWNS_ADDRESSES[cls] = owns
    return owns


class _CanonicalWalker:
    """Deterministic value-serializer for kernel state graphs.

    Produces bytes that are equal iff two graphs carry the same values,
    the same container orderings, and the same aliasing of mutable
    objects; identity of immutables is deliberately ignored.  Every
    mutable object visited is collected in :attr:`seen` — the walk
    doubles as the closure probe for segment grouping.
    """

    def __init__(self, root_ids: Dict[int, RootKey]):
        self._root_ids = root_ids
        self._memo: Dict[int, int] = {}
        self.seen: List[Any] = []

    def walk_state(self, state: Dict[str, Any]) -> bytes:
        """Canonical bytes of a root's captured state dict."""
        chunks = [b"S%d" % len(state)]
        for name, value in state.items():
            chunks.append(self._w(name))
            chunks.append(self._w(value))
        return b"".join(chunks)

    def _w(self, obj: Any) -> bytes:
        key = self._root_ids.get(id(obj))
        if key is not None:
            return b"R" + repr(key).encode()
        if obj is None or obj is True or obj is False:
            return b"c" + repr(obj).encode()
        kind = type(obj)
        if kind in (int, float, complex, str, bytes):
            return b"v" + repr(obj).encode()
        if isinstance(obj, enum.Enum):
            return (b"E" + type(obj).__qualname__.encode()
                    + b"." + obj.name.encode())
        if isinstance(obj, type):
            return b"T%s:%s" % (obj.__module__.encode(),
                                obj.__qualname__.encode())
        if kind in (tuple, frozenset):
            # Value types: encoded inline, never memoized (their sharing
            # is unobservable).  frozensets are order-canonicalized.
            parts = [self._w(item) for item in obj]
            if kind is frozenset:
                parts.sort()
            return b"t%d(" % len(parts) + b"".join(parts) + b")"
        index = self._memo.get(id(obj))
        if index is not None:
            return b"@%d" % index
        self._memo[id(obj)] = len(self._memo)
        self.seen.append(obj)
        if kind is dict:
            chunks = [b"d%d(" % len(obj)]
            for item_key, value in obj.items():
                chunks.append(self._w(item_key))
                chunks.append(self._w(value))
            return b"".join(chunks) + b")"
        if kind is list:
            return (b"l%d(" % len(obj)
                    + b"".join(self._w(item) for item in obj) + b")")
        if kind is set:
            parts = sorted(self._w(item) for item in obj)
            return b"s%d(" % len(parts) + b"".join(parts) + b")"
        if callable(obj) and not hasattr(obj, "__dict__") \
                and not hasattr(obj, "__slots__"):
            return b"F" + getattr(obj, "__qualname__", repr(obj)).encode()
        # Arbitrary object: class plus captured state.
        head = b"o%s:%s{" % (kind.__module__.encode(),
                             kind.__qualname__.encode())
        getstate = getattr(obj, "__getstate__", None)
        if getstate is not None:
            return head + self._w(getstate()) + b"}"
        d = getattr(obj, "__dict__", None)
        if d is not None:
            return head + self._w(d) + b"}"
        state = {}
        for cls in kind.__mro__:
            for name in getattr(cls, "__slots__", ()):
                if name != "__dict__" and hasattr(obj, name):
                    state[name] = getattr(obj, name)
        return head + self._w(state) + b"}"


def state_fingerprint(kernel: Kernel) -> bytes:
    """Canonical bytes of one kernel's complete observable state.

    Two kernels with equal fingerprints are indistinguishable to any
    test program: same values, same container orderings, same aliasing
    of mutable kernel objects.  Used by the segmented-vs-full restore
    equivalence tests and the benchmark regression gate.
    """
    return _CanonicalWalker({})._w(kernel)


class _GroupPickler(pickle.Pickler):
    """Base-payload writer: stubs snapshot roots with persistent ids."""

    def __init__(self, stream: io.BytesIO, root_pids: Dict[int, RootKey]):
        super().__init__(stream, protocol=_PROTO)
        self._root_pids = root_pids

    def persistent_id(self, obj: Any) -> Optional[Tuple]:
        key = self._root_pids.get(id(obj))
        if key is not None:
            return ("r", key)
        return None


class _ResolvingUnpickler(pickle.Unpickler):
    """Resolves persistent root references against the live root table."""

    def __init__(self, stream: io.BytesIO, live: Dict[RootKey, Any]):
        super().__init__(stream)
        self._live = live

    def persistent_load(self, pid: Tuple) -> Any:
        tag, key = pid
        if tag == "r":
            return self._live[tuple(key)]
        # pragma: no cover - payload corruption guard
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


#: Thread-local binding of the image a delta is being applied to, so the
#: module-level resolvers below (pickled *by reference* into delta
#: payloads) can find the applier's live objects.
_DELTA_CONTEXT = threading.local()


def _resolve_root(key: RootKey) -> Any:
    """Delta-payload stub: a snapshot root, resolved by root key."""
    return _DELTA_CONTEXT.image.roots[key]


def _resolve_interior(addrs: Tuple[int, ...]) -> Any:
    """Delta-payload stub: a clean-group traced interior object,
    resolved by its kernel-memory address tuple."""
    image = _DELTA_CONTEXT.image
    return image._interior_addr_map(image._addr_to_group[addrs[0]])[addrs]


class _DeltaDispatch:
    """``Pickler.dispatch_table`` for :meth:`SegmentedImage.capture_delta`.

    Deltas are captured on the execution hot path, so they avoid the
    ``persistent_id`` callback that base payloads use: the C pickler
    invokes ``persistent_id`` once per pickled object, and ~90% of a
    root state's objects are ints and strings that could never be stubs.
    A dispatch table is consulted only for custom-class instances —
    builtins keep the interpreter's fast path — and every snapshot root
    is a custom-class instance, so no stub can be missed.  The per-class
    reducer stubs roots (by key) and clean-group traced interior objects
    (by address) as calls to the module-level resolvers above; anything
    else falls through to the object's ordinary reduction.
    """

    def __init__(self, image: "SegmentedImage", dirty: set):
        self._root_pids = image._root_pids
        self._addr_to_group = image._addr_to_group
        self._dirty = dirty
        self._reducers: Dict[type, Callable[[Any], Tuple]] = {}

    def __getitem__(self, cls: type) -> Callable[[Any], Tuple]:
        reducer = self._reducers.get(cls)
        if reducer is None:
            if issubclass(cls, type):
                # *cls* is a metaclass, the objects are classes: let the
                # pickler fall back to its own by-reference save.
                raise KeyError(cls)
            reducer = self._make_reducer(cls)
            self._reducers[cls] = reducer
        return reducer

    def _make_reducer(self, cls: type) -> Callable[[Any], Tuple]:
        root_pids = self._root_pids
        if not _owns_addresses(cls):
            def reducer(obj: Any) -> Tuple:
                key = root_pids.get(id(obj))
                if key is not None:
                    return (_resolve_root, (key,))
                return obj.__reduce_ex__(_PROTO)
            return reducer

        addr_to_group = self._addr_to_group
        dirty = self._dirty

        def reducer(obj: Any) -> Tuple:
            key = root_pids.get(id(obj))
            if key is not None:
                return (_resolve_root, (key,))
            addrs = _addresses_of(obj)
            if addrs:
                group = addr_to_group.get(addrs[0])
                if group is not None and group not in dirty:
                    return (_resolve_interior, (addrs,))
            # Post-snapshot object (by value) or part of the delta
            # payload itself (aliased through the shared memo).
            return obj.__reduce_ex__(_PROTO)
        return reducer


class _UnionFind:
    def __init__(self, count: int):
        self._parent = list(range(count))

    def find(self, index: int) -> int:
        parent = self._parent
        root = index
        while parent[root] != root:
            root = parent[root]
        while parent[index] != root:
            parent[index], index = root, parent[index]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


class StateDelta:
    """A portable diff between the snapshot and a derived kernel state.

    Captures, for every group dirtied since the last restore, the
    group's *current* (post-execution) root states — pickled with
    cross-group references (roots and clean-group traced interior
    objects alike) stubbed as resolver calls, so they re-bind to the
    live objects of whichever image the delta is later
    applied to.  A delta captured on
    one machine is therefore valid on any machine restoring an
    *identical* snapshot (same config, hence same root enumeration and
    group layout); the sender-state cache enforces that by keying deltas
    on the snapshot's content id.

    Deltas are immutable once captured and carry no references into the
    kernel they were captured from.
    """

    __slots__ = ("groups", "payload", "group_count")

    def __init__(self, groups: Tuple[int, ...], payload: bytes,
                 group_count: int):
        #: Indices of the groups this delta overwrites.
        self.groups = groups
        #: Pickled ``[(root key, state), ...]`` for every root in those
        #: groups, sharing one memo so intra-delta aliasing survives.
        self.payload = payload
        #: Group count of the image the delta was captured from — a
        #: cheap layout-compatibility check at apply time.
        self.group_count = group_count

    @property
    def size_bytes(self) -> int:
        return len(self.payload)


class SegmentedImage:
    """A segmented snapshot of one live kernel, bound to that kernel.

    Build with :meth:`build`; install the write barrier with
    :meth:`attach`; restore dirty segments with :meth:`restore_in_place`.
    Derived states (e.g. post-sender kernel state) can be captured as
    portable :class:`StateDelta` objects with :meth:`capture_delta` and
    re-materialized — on this image or an identically-built one — with
    :meth:`apply_delta`.
    """

    def __init__(self) -> None:
        self.kernel: Kernel = None  # type: ignore[assignment]
        #: RootKey -> live root object (identity-stable across restores).
        self.roots: Dict[RootKey, Any] = {}
        #: id(root) -> RootKey — the persistent-id table.  Roots keep
        #: their identity for the image's lifetime, so this is built
        #: once instead of per capture/walk.
        self._root_pids: Dict[int, RootKey] = {}
        #: id(root) -> group index, for explicit object dirty marks.
        self._group_of_root_id: Dict[int, int] = {}
        #: group index -> pickled [(key, state), ...] payload.
        self.payloads: List[bytes] = []
        #: group index -> member root keys (diagnostics / telemetry).
        self.group_members: List[List[RootKey]] = []
        #: traced field address -> owning group index.
        self._addr_to_group: Dict[int, int] = {}
        #: per-root canonical state bytes, the consistency reference.
        self._reference: Dict[RootKey, bytes] = {}
        #: groups restored on every reset (untraced hot-path mutations).
        self.always_dirty: frozenset = frozenset()
        #: groups dirtied since the last restore (fed by the write hook
        #: and by the kernel's explicit object marks).
        self._dirty_groups: set = set()
        #: per-group re-materialization counter: bumped whenever a
        #: group's payload (or a delta) replaces its interior objects,
        #: invalidating any cached address map for that group.
        self._generation: List[int] = []
        #: group -> (generation, address tuple -> live interior object),
        #: the delta persistent-id resolution table (lazily rebuilt).
        self._interior_cache: Dict[int, Tuple[int, Dict[Tuple[int, ...],
                                                        Any]]] = {}
        self.attached = False
        #: set when a ``segment.corrupt`` injection dropped a group from
        #: the last incremental restore; cleared by recovery.
        self.corruption_pending = False

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, kernel: Kernel,
              payloads: Optional[Sequence[Any]] = None) -> "SegmentedImage":
        """Segment *kernel*; with *payloads*, adopt pre-pickled groups.

        *payloads* (one buffer per group, e.g. shared-memory views of
        another process's identically-built image) skips the per-group
        pickling pass — the single most expensive step of a boot.  The
        probe pass still runs against the live kernel, so grouping is
        recomputed locally and validated against the payload count;
        group *order* is deterministic (roots enumerate in insertion
        order, union-find components appear in first-member order), which
        is also what makes cross-machine :class:`StateDelta` exchange
        sound.
        """
        image = cls()
        image.kernel = kernel
        image._enumerate_roots(kernel)
        root_keys = list(image.roots)
        root_pids = {id(obj): key for key, obj in image.roots.items()}
        image._root_pids = root_pids

        # Probe pass: one canonical walk per root yields the consistency
        # reference, interior-object ownership, and traced-address
        # ownership.  ``keepalive`` pins every visited object (and the
        # temporary state dicts) until grouping is done, so ``id()``
        # keys cannot be recycled mid-build.
        owner: Dict[int, int] = {}
        uf = _UnionFind(len(root_keys))
        addr_owner: Dict[int, int] = {}
        keepalive: List[Any] = []
        for index, key in enumerate(root_keys):
            root = image.roots[key]
            state = _capture_state(key, root)
            walker = _CanonicalWalker(root_pids)
            image._reference[key] = walker.walk_state(state)
            keepalive.append((state, walker.seen))
            for addr in _addresses_of(root):
                addr_owner[addr] = index
            for obj in walker.seen:
                for addr in _addresses_of(obj):
                    addr_owner[addr] = index
                previous = owner.setdefault(id(obj), index)
                if previous != index:
                    uf.union(previous, index)

        # Grouping: one payload per union-find component, pickled with a
        # shared memo so intra-group sharing survives restore.
        component_to_group: Dict[int, int] = {}
        members: List[List[int]] = []
        for index in range(len(root_keys)):
            component = uf.find(index)
            group = component_to_group.setdefault(component, len(members))
            if group == len(members):
                members.append([])
            members[group].append(index)

        if payloads is not None:
            if len(payloads) != len(members):
                raise ValueError(
                    f"shared image has {len(payloads)} group payload(s), "
                    f"local grouping found {len(members)} — the snapshot "
                    "was built from a different kernel configuration")
            image.payloads = list(payloads)
            for group_indices in members:
                image.group_members.append(
                    [root_keys[i] for i in group_indices])
        else:
            for group_indices in members:
                entries = []
                for index in group_indices:
                    key = root_keys[index]
                    entries.append(
                        (key, _capture_state(key, image.roots[key])))
                stream = io.BytesIO()
                _GroupPickler(stream, root_pids).dump(entries)
                image.payloads.append(stream.getvalue())
                image.group_members.append(
                    [root_keys[i] for i in group_indices])

        for group, group_indices in enumerate(members):
            for index in group_indices:
                root = image.roots[root_keys[index]]
                image._group_of_root_id[id(root)] = group
        image._addr_to_group = {
            addr: image._group_of_root_id[id(image.roots[root_keys[index]])]
            for addr, index in addr_owner.items()
        }
        image.always_dirty = frozenset(
            image._group_of_root_id[id(image.roots[key])]
            for key in _ALWAYS_DIRTY_KEYS if key in image.roots
        )
        image._generation = [0] * len(image.payloads)
        del keepalive
        return image

    def _enumerate_roots(self, kernel: Kernel) -> None:
        roots = self.roots
        roots[("kernel",)] = kernel
        roots[("arena",)] = kernel.arena
        roots[("clock",)] = kernel.clock
        roots[("nsproxy0",)] = kernel.init_nsproxy
        roots[("registry",)] = kernel.namespaces
        roots[("tasktable",)] = kernel.tasks
        for name, value in kernel.__dict__.items():
            if name in _KERNEL_NON_SUB_ATTRS:
                continue
            roots[("sub", name)] = value
        for instances in kernel.namespaces.instances.values():
            for namespace in instances:
                roots[("ns", namespace.inum)] = namespace
        for task in kernel.tasks.tasks:
            roots[("task", task.base_address)] = task

    # -- runtime binding -----------------------------------------------------

    def attach(self) -> None:
        """Install the write barrier and start with a clean dirty set."""
        self.kernel.arena.dirty_hook = self.note_write
        self.kernel._dirty_roots.clear()
        self._dirty_groups.clear()
        self.attached = True

    def note_write(self, addr: int) -> None:
        """Arena write barrier: map one traced store to its group."""
        group = self._addr_to_group.get(addr)
        if group is not None:
            self._dirty_groups.add(group)

    # -- restore -------------------------------------------------------------

    def collect_dirty(self) -> set:
        """Dirty groups = write barrier + explicit marks + always-dirty."""
        dirty = set(self._dirty_groups)
        group_of = self._group_of_root_id
        for obj in self.kernel._dirty_roots:
            group = group_of.get(id(obj))
            if group is not None:
                dirty.add(group)
        dirty |= self.always_dirty
        return dirty

    def restore_in_place(self, faults: Optional[FaultPlan] = None,
                         skip: Optional[frozenset] = None
                         ) -> Tuple[int, int]:
        """Restore every dirty group into the live kernel.

        Returns ``(restored, skipped)`` group counts.  *skip* names
        dirty groups to leave untouched — the delta fast path passes the
        groups a :class:`StateDelta` is about to overwrite wholesale, so
        their base-state restore would be pure waste.  A skipped group
        is left unmarked; the caller must immediately re-cover it
        (apply_delta marks every delta group dirty again).

        Two injection sites live here.  ``restore.fail`` raises before
        any group is touched (a failed payload load); the caller retries
        or falls back to :meth:`restore_all_in_place`.  A
        ``segment.corrupt`` firing silently drops one dirty group from
        the restore set — exactly the torn restore the canonical-form
        consistency check (:meth:`verify`) exists to catch — and sets
        :attr:`corruption_pending` so the machine knows to run that
        check and repair.
        """
        if not self.attached:
            raise RuntimeError("image not attached to its kernel")
        if faults is not None and faults.should_inject(SITE_RESTORE_FAIL):
            raise RestoreFaultInjected(
                SITE_RESTORE_FAIL, "injected segmented restore failure")
        dirty = self.collect_dirty()
        if skip:
            dirty -= skip
        if faults is not None and dirty \
                and faults.should_inject(SITE_SEGMENT_CORRUPT):
            dirty.discard(max(dirty))
            self.corruption_pending = True
        live = self.roots
        for group in dirty:
            stream = io.BytesIO(self.payloads[group])
            entries = _ResolvingUnpickler(stream, live).load()
            for key, state in entries:
                _apply_state(key, live[key], state)
            self._generation[group] += 1
        self._dirty_groups.clear()
        self.kernel._dirty_roots.clear()
        return len(dirty), len(self.payloads) - len(dirty)

    def restore_all_in_place(self) -> int:
        """Restore *every* group, dirty or not — the recovery path.

        Injection-free by design: after a failed or corrupted
        incremental restore, this re-materializes the full snapshot
        state while preserving root identity, which is state-equivalent
        to a fresh full deserialization (the clean run's behaviour).
        Returns the number of groups restored.
        """
        live = self.roots
        for payload in self.payloads:
            stream = io.BytesIO(payload)
            entries = _ResolvingUnpickler(stream, live).load()
            for key, state in entries:
                _apply_state(key, live[key], state)
        self._generation = [count + 1 for count in self._generation]
        self._dirty_groups.clear()
        self.kernel._dirty_roots.clear()
        self.corruption_pending = False
        return len(self.payloads)

    # -- derived-state deltas ------------------------------------------------

    def _interior_addr_map(self, group: int) -> Dict[Tuple[int, ...], Any]:
        """Address tuple -> live interior object, for one *clean* group.

        Resolution table for the delta persistent-id scheme: a canonical
        walk of the group's roots (with every root stubbed, so the walk
        never crosses into another group) enumerates its mutable interior
        objects; those owning traced kernel memory are keyed by their
        full address tuple.  Cached per group and invalidated by the
        re-materialization counter, so the (rare) groups a run actually
        restores are re-walked while everything else stays amortized.
        """
        generation = self._generation[group]
        cached = self._interior_cache.get(group)
        if cached is not None and cached[0] == generation:
            return cached[1]
        walker = _CanonicalWalker(self._root_pids)
        for key in self.group_members[group]:
            walker.walk_state(_capture_state(key, self.roots[key]))
        addr_map: Dict[Tuple[int, ...], Any] = {}
        for obj in walker.seen:
            addrs = _addresses_of(obj)
            if addrs:
                addr_map[addrs] = obj
        self._interior_cache[group] = (generation, addr_map)
        return addr_map

    def capture_delta(self) -> StateDelta:
        """Capture the current divergence from the snapshot as a delta.

        Pickles the live state of every root in every *dirty* group
        (write barrier + explicit marks + always-dirty) into a single
        payload with a shared memo.  Cross-group references are
        stubbed (see :class:`_DeltaDispatch`): roots by key, and traced
        interior objects
        of *clean* groups by kernel-memory address — so an execution
        that linked a new object into clean state (an open file pinning
        a mount, say) re-links to the applier's *live* object instead of
        a detached copy, exactly as re-execution would.  Objects created
        since the snapshot (new namespaces, tasks, sockets) own no
        snapshot-traced memory and are serialized by value — a later
        :meth:`apply_delta` re-materializes fresh copies, which is
        exactly the lifetime they have under a segmented restore.

        The dirty set is left untouched: the capturing machine usually
        keeps executing from this state, and the next reset must still
        restore everything the producer dirtied.
        """
        if not self.attached:
            raise RuntimeError("image not attached to its kernel")
        groups = tuple(sorted(self.collect_dirty()))
        entries = []
        for group in groups:
            for key in self.group_members[group]:
                entries.append((key, _capture_state(key, self.roots[key])))
        stream = io.BytesIO()
        pickler = pickle.Pickler(stream, protocol=_PROTO)
        pickler.dispatch_table = _DeltaDispatch(self, set(groups))
        pickler.dump(entries)
        return StateDelta(groups, stream.getvalue(), len(self.payloads))

    def apply_delta(self, delta: StateDelta) -> int:
        """Overlay *delta* onto the live kernel; returns roots touched.

        The kernel must already hold base-snapshot state (i.e. call this
        right after a reset), so interior address references resolve
        against the same (snapshot) state they were captured against.
        Every group the delta covers is marked dirty so the *next* reset
        restores it back to the snapshot — from the dirty tracker's
        point of view an applied delta is indistinguishable from the
        producer's own execution.
        """
        if not self.attached:
            raise RuntimeError("image not attached to its kernel")
        if delta.group_count != len(self.payloads):
            raise ValueError(
                "state delta captured from an incompatible image "
                f"({delta.group_count} groups vs {len(self.payloads)})")
        _DELTA_CONTEXT.image = self
        try:
            entries = pickle.loads(delta.payload)
        finally:
            _DELTA_CONTEXT.image = None
        for key, state in entries:
            _apply_state(key, self.roots[key], state)
        for group in delta.groups:
            self._generation[group] += 1
        self._dirty_groups.update(delta.groups)
        return len(entries)

    # -- consistency ---------------------------------------------------------

    def verify(self) -> None:
        """Re-walk every root and compare against the snapshot reference.

        Raises :class:`RestoreConsistencyError` naming the divergent
        roots if any mutation escaped dirty tracking.
        """
        root_pids = self._root_pids
        offenders: List[RootKey] = []
        for key, reference in self._reference.items():
            state = _capture_state(key, self.roots[key])
            walker = _CanonicalWalker(root_pids)
            if walker.walk_state(state) != reference:
                offenders.append(key)
        if offenders:
            raise RestoreConsistencyError(offenders)

    # -- telemetry -----------------------------------------------------------

    @property
    def group_count(self) -> int:
        return len(self.payloads)

    @property
    def segmented_bytes(self) -> int:
        return sum(len(payload) for payload in self.payloads)

    def describe_groups(self) -> List[Tuple[List[RootKey], int]]:
        """(member keys, payload size) per group, for benchmarks/docs."""
        return [(list(keys), len(payload))
                for keys, payload in zip(self.group_members, self.payloads)]


#: Type of the arena's dirty hook, for reference by the kernel layer.
DirtyHook = Callable[[int], None]
