"""A test machine: one kernel, two containers, one snapshot.

Mirrors KIT's VM setup (§4.1.1 / §5.2): boot the target kernel, create
two processes, confine each to fresh namespace instances (the
containers), apply the container tuning of §5.2 — here, a private tmpfs
on ``/tmp`` as container runtimes do, plus the per-namespace IPC quota
already built into :class:`~repro.kernel.ipc.IpcNamespace` — then take
the snapshot every run restores from.

Container namespace flags are configurable per campaign: the Table-3
bug-E reproduction runs its sender in the *host* mount namespace (the
paper's "(Host)" annotation) by clearing ``CLONE_NEWNS`` from the sender
container's flags.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field, replace
from typing import Any, List, Optional, Tuple

from ..corpus.program import TestProgram
from ..faults.plan import (
    SITE_SEGMENT_CORRUPT,
    FaultPlan,
    FaultRetriesExhausted,
    RestoreFaultInjected,
)
from ..kernel.bugs import BugFlags
from ..kernel.kernel import Kernel, KernelConfig
from ..kernel.ktrace import KernelTracer
from ..kernel.namespaces import ALL_NAMESPACE_FLAGS, CLONE_NEWNS, NamespaceType
from ..kernel.task import Task
from .executor import (
    ExecutionResult,
    Executor,
    SteppedExecution,
    SyscallRecord,
)
from .segments import RestoreConsistencyError, SegmentedImage, StateDelta
from .snapshot import Snapshot

SENDER = "sender"
RECEIVER = "receiver"


@dataclass(frozen=True)
class ContainerConfig:
    """How one container is set up before the snapshot."""

    name: str
    unshare_flags: int = ALL_NAMESPACE_FLAGS
    #: Install a private rootfs (root/proc/tmp) after unsharing the
    #: mount namespace, as container runtimes do via pivot_root.  With
    #: this on, no superblock is shared with the host or the other
    #: container, so mount-table manipulation inside a test program
    #: cannot reach foreign files through legitimate sharing — only
    #: genuine kernel bugs can (§5.2's container tuning).
    pivot_root: bool = True
    uid: int = 0

    def host_mount_ns(self) -> "ContainerConfig":
        """Variant sharing the host mount namespace (Table 3, bug E)."""
        return replace(self, unshare_flags=self.unshare_flags & ~CLONE_NEWNS,
                       pivot_root=False)


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to boot identical machines (cluster distribution)."""

    kernel: KernelConfig = field(default_factory=KernelConfig)
    bugs: BugFlags = field(default_factory=BugFlags)
    sender: ContainerConfig = field(default_factory=lambda: ContainerConfig(SENDER))
    receiver: ContainerConfig = field(default_factory=lambda: ContainerConfig(RECEIVER))
    #: Restore the whole kernel from the full pickle on every reset
    #: instead of restoring only dirty segments in place (the slow,
    #: trivially correct path; segmented is the default).
    full_restore: bool = False
    #: After every segmented reset, cross-verify the restored state
    #: against the full snapshot byte-for-byte and fail loudly on any
    #: divergence (opt-in: it re-pickles the whole kernel each reset).
    verify_restore: bool = False
    #: Shared fault-injection plan (chaos campaigns); every machine
    #: booted from this config registers its restore/execution sites
    #: against the same plan, so accounting is campaign-global.  Not
    #: part of config identity: the same machine boots either way.
    fault_plan: Optional[FaultPlan] = field(default=None, compare=False)


@dataclass
class MachineStats:
    """Restore telemetry for one machine (feeds §6.5 reporting)."""

    full_restores: int = 0
    segmented_restores: int = 0
    segments_restored: int = 0
    segments_skipped: int = 0
    restore_seconds: float = 0.0
    #: Resets that had to take a fault-recovery path (retried full
    #: restore, or restore-all after an injected segment corruption).
    recovery_restores: int = 0

    @property
    def restores(self) -> int:
        return self.full_restores + self.segmented_restores

    def merge(self, other: "MachineStats") -> None:
        """Fold another machine's counters into this one (cluster sum)."""
        self.full_restores += other.full_restores
        self.segmented_restores += other.segmented_restores
        self.segments_restored += other.segments_restored
        self.segments_skipped += other.segments_skipped
        self.restore_seconds += other.restore_seconds
        self.recovery_restores += other.recovery_restores

    def copy(self) -> "MachineStats":
        return replace(self)

    def since(self, earlier: "MachineStats") -> "MachineStats":
        """Counters accumulated after *earlier* (per-stage attribution)."""
        return MachineStats(
            full_restores=self.full_restores - earlier.full_restores,
            segmented_restores=self.segmented_restores - earlier.segmented_restores,
            segments_restored=self.segments_restored - earlier.segments_restored,
            segments_skipped=self.segments_skipped - earlier.segments_skipped,
            restore_seconds=self.restore_seconds - earlier.restore_seconds,
            recovery_restores=self.recovery_restores - earlier.recovery_restores,
        )


class Machine:
    """One bootable, snapshottable test machine."""

    def __init__(self, config: Optional[MachineConfig] = None,
                 shared_snapshot: Optional[Any] = None):
        self.config = config or MachineConfig()
        self.kernel: Kernel = None  # type: ignore[assignment]
        self.sender_task: Task = None  # type: ignore[assignment]
        self.receiver_task: Task = None  # type: ignore[assignment]
        self.stats = MachineStats()
        #: The campaign-wide injection plan (None = clean machine).
        self.faults: Optional[FaultPlan] = self.config.fault_plan
        #: Set by the cluster layer: which worker owns this machine.
        self.cluster_worker_id: Optional[int] = None
        #: *shared_snapshot* (a :class:`~repro.vm.shm.SharedSnapshotView`)
        #: boots from another process's published snapshot: the blob and
        #: segmented group payloads are borrowed straight from shared
        #: memory instead of being re-pickled — the shard-pool fast boot.
        if shared_snapshot is not None:
            self.snapshot = self._boot_from_shared(shared_snapshot)
        else:
            self.snapshot = self._boot_and_snapshot()
        if self.snapshot.image is not None:
            # The boot kernel stays live: segmented resets restore it in
            # place, so it must be the kernel the image is bound to.
            self.snapshot.image.attach()
            self._bind(self.snapshot.image.kernel)
        else:
            self.reset()

    # -- boot ------------------------------------------------------------------

    def _boot_and_snapshot(self) -> Snapshot:
        kernel = Kernel(config=self.config.kernel, bugs=self.config.bugs)
        for container in (self.config.sender, self.config.receiver):
            task = kernel.spawn_task(uid=container.uid, comm=container.name)
            if container.unshare_flags:
                kernel.unshare(task, container.unshare_flags)
            if container.pivot_root and container.unshare_flags & CLONE_NEWNS:
                mnt_ns = task.nsproxy.get(NamespaceType.MNT)
                mnt_ns.mounts.clear()
                kernel.vfs.install_standard_tree(mnt_ns)
        return Snapshot.take(kernel, description="post-container-setup",
                             segmented=not self.config.full_restore)

    def _boot_from_shared(self, view: Any) -> Snapshot:
        """Materialize a snapshot from a published shared-memory view.

        The kernel is deserialized once from the shared blob; when the
        view carries segmented payloads (and this machine wants the
        segmented path), :meth:`SegmentedImage.build` re-derives the
        grouping against the live kernel but *adopts* the shared
        payload buffers, skipping the per-group pickling that dominates
        a cold boot.  The publisher's content id is inherited verbatim,
        so derived-state cache keys (baselines, sender deltas) agree
        across every shard booted from the same view.
        """
        kernel: Kernel = pickle.loads(view.blob)
        image = None
        if view.payloads is not None and not self.config.full_restore:
            image = SegmentedImage.build(kernel, payloads=view.payloads)
        return Snapshot(view.blob, view.description, image,
                        content_id=view.content_id)

    # -- state control -----------------------------------------------------

    def reset(self, boot_offset_ns: Optional[int] = None,
              skip_groups: Optional[frozenset] = None) -> None:
        """Reload the snapshot (optionally with a rebased clock).

        With a segmented snapshot (the default) this restores only the
        segments dirtied since the last reset, in place — task identity
        is preserved across resets.  With ``full_restore`` (or when no
        image exists) the whole kernel is deserialized afresh.
        *skip_groups* is the delta fast path's contract (see
        :meth:`restore_state_delta`): those dirty groups stay untouched
        because the caller overwrites them immediately.
        """
        image = self.snapshot.image
        start = time.perf_counter()
        if image is None:
            kernel = self._restore_full(boot_offset_ns)
            self._bind(kernel)
            self.stats.full_restores += 1
        else:
            # Drop any leftover instrumentation first: a full restore
            # yields a tracerless kernel, and segmented resets must too.
            self.kernel.attach_tracer(None)
            restored, skipped = self._restore_segmented(image, skip_groups)
            if self.config.verify_restore and skip_groups is None:
                # Skipped groups legitimately diverge from the snapshot
                # (the caller overwrites them next), so the blanket
                # base-state check only applies to plain resets.
                image.verify()
            if boot_offset_ns is not None:
                self.kernel.clock.rebase(boot_offset_ns)
            self.stats.segmented_restores += 1
            self.stats.segments_restored += restored
            self.stats.segments_skipped += skipped
        self.stats.restore_seconds += time.perf_counter() - start

    def _restore_full(self, boot_offset_ns: Optional[int]) -> Kernel:
        """Full deserialization, retrying injected restore failures."""
        failures = []
        while True:
            try:
                kernel = self.snapshot.restore(boot_offset_ns,
                                               faults=self.faults)
            except RestoreFaultInjected as error:
                failures.append(error.site)
                budget = self.faults.max_retries if self.faults else 0
                if len(failures) > budget:
                    self.faults.record_infra_failed(failures)
                    raise FaultRetriesExhausted(failures,
                                                context="full restore")
                continue
            if failures:
                self.faults.record_recovered(failures)
                self.stats.recovery_restores += 1
            return kernel

    def _restore_segmented(self, image,
                           skip_groups: Optional[frozenset] = None
                           ) -> Tuple[int, int]:
        """Incremental restore with the two fault-recovery paths.

        A failed restore attempt falls back to restoring every group —
        slower, but provably equivalent to a fresh full deserialization
        (root identity is preserved either way).  An injected corruption
        is detected by the canonical-form check and repaired the same
        way; a corruption the check cannot observe (the skipped group
        happened to be byte-identical to the snapshot) is benign by
        definition.  Either way the injection is absorbed.
        """
        faults = self.faults
        try:
            restored, skipped = image.restore_in_place(faults=faults,
                                                       skip=skip_groups)
        except RestoreFaultInjected as error:
            restored = image.restore_all_in_place()
            skipped = 0
            faults.record_recovered([error.site])
            self.stats.recovery_restores += 1
            return restored, skipped
        if faults is not None and image.corruption_pending:
            image.corruption_pending = False
            try:
                image.verify()
            except RestoreConsistencyError:
                restored = image.restore_all_in_place()
                skipped = 0
                self.stats.recovery_restores += 1
            faults.record_recovered([SITE_SEGMENT_CORRUPT])
        return restored, skipped

    def _bind(self, kernel: Kernel) -> None:
        self.kernel = kernel
        tasks = {task.comm: task for task in kernel.tasks.all_tasks()}
        self.sender_task = tasks[self.config.sender.name]
        self.receiver_task = tasks[self.config.receiver.name]

    def attach_tracer(self, tracer: Optional[KernelTracer]) -> None:
        self.kernel.attach_tracer(tracer)

    # -- derived-state deltas -----------------------------------------------

    @property
    def snapshot_id(self) -> str:
        """Content id of the base snapshot (the delta-compatibility key)."""
        return self.snapshot.content_id

    @property
    def supports_state_deltas(self) -> bool:
        """Delta capture needs the segmented image's dirty tracking."""
        return self.snapshot.image is not None

    def capture_state_delta(self) -> StateDelta:
        """Capture the current divergence from the base snapshot.

        Call after executing a program from a fresh reset; the delta
        holds exactly the segments that execution dirtied and can be
        re-applied — here or on another machine with the same
        :attr:`snapshot_id` — via :meth:`restore_state_delta`.
        """
        image = self.snapshot.image
        if image is None:
            raise RuntimeError(
                "state deltas require a segmented snapshot "
                "(full_restore machines re-execute instead)")
        return image.capture_delta()

    def restore_state_delta(self, delta: StateDelta) -> None:
        """Reset to the base snapshot, then overlay *delta*.

        State-equivalent to resetting and re-executing the program the
        delta was captured from (the sender-cache equivalence property);
        the reset itself takes the normal fault-recovery paths.  Dirty
        groups the delta covers are not base-restored first — the delta
        replaces every root state in them, so that restore would be
        dead work on the cache's hottest path.  Under ``verify_restore``
        the exact reset-then-apply sequence runs instead, keeping the
        blanket base-state check meaningful.
        """
        image = self.snapshot.image
        if image is None:
            raise RuntimeError(
                "state deltas require a segmented snapshot "
                "(full_restore machines re-execute instead)")
        if self.config.verify_restore:
            self.reset()
        else:
            self.reset(skip_groups=frozenset(delta.groups))
        image.apply_delta(delta)

    # -- execution ----------------------------------------------------------

    def task_for(self, container: str) -> Task:
        if container == SENDER:
            return self.sender_task
        if container == RECEIVER:
            return self.receiver_task
        raise ValueError(f"unknown container {container!r}")

    def run(self, container: str, program: TestProgram,
            profile: bool = False) -> ExecutionResult:
        """Execute *program* in *container* against the current state."""
        executor = Executor(self.kernel, self.task_for(container),
                            faults=self.faults)
        return executor.run(program, profile=profile)

    def begin_stepped(self, container: str,
                      program: TestProgram) -> SteppedExecution:
        """Start a one-call-at-a-time execution of *program*.

        The diagnosis prefix memo advances the sender this way, capturing
        a state delta before each live call (§4.4's Algorithm 2 reuses
        those intermediate states instead of replaying prefixes).
        """
        executor = Executor(self.kernel, self.task_for(container),
                            faults=self.faults)
        return SteppedExecution(executor, program)

    def replay_slots(self, container: str, program: TestProgram,
                     start: int, stop: int,
                     prior: List[Optional["SyscallRecord"]]) -> None:
        """Re-execute slots ``[start, stop)`` against the current state.

        The diagnosis prefix memo checkpoints machine state every few
        live calls; a variant between checkpoints restores the nearest
        one and replays the remaining slots, which is deterministic
        from the same state.  *prior* supplies the records of slots
        below *start* — result-argument references resolve by absolute
        record index, so the replayed calls need them for dataflow.
        """
        executor = Executor(self.kernel, self.task_for(container),
                            faults=self.faults)
        records: List[Optional["SyscallRecord"]] = list(prior[:start])
        for slot in range(start, stop):
            executor.execute_slot(program, slot, records, None, False)
