"""A test machine: one kernel, two containers, one snapshot.

Mirrors KIT's VM setup (§4.1.1 / §5.2): boot the target kernel, create
two processes, confine each to fresh namespace instances (the
containers), apply the container tuning of §5.2 — here, a private tmpfs
on ``/tmp`` as container runtimes do, plus the per-namespace IPC quota
already built into :class:`~repro.kernel.ipc.IpcNamespace` — then take
the snapshot every run restores from.

Container namespace flags are configurable per campaign: the Table-3
bug-E reproduction runs its sender in the *host* mount namespace (the
paper's "(Host)" annotation) by clearing ``CLONE_NEWNS`` from the sender
container's flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..corpus.program import TestProgram
from ..kernel.bugs import BugFlags
from ..kernel.kernel import Kernel, KernelConfig
from ..kernel.ktrace import KernelTracer
from ..kernel.namespaces import ALL_NAMESPACE_FLAGS, CLONE_NEWNS, NamespaceType
from ..kernel.task import Task
from .executor import ExecutionResult, Executor
from .snapshot import Snapshot

SENDER = "sender"
RECEIVER = "receiver"


@dataclass(frozen=True)
class ContainerConfig:
    """How one container is set up before the snapshot."""

    name: str
    unshare_flags: int = ALL_NAMESPACE_FLAGS
    #: Install a private rootfs (root/proc/tmp) after unsharing the
    #: mount namespace, as container runtimes do via pivot_root.  With
    #: this on, no superblock is shared with the host or the other
    #: container, so mount-table manipulation inside a test program
    #: cannot reach foreign files through legitimate sharing — only
    #: genuine kernel bugs can (§5.2's container tuning).
    pivot_root: bool = True
    uid: int = 0

    def host_mount_ns(self) -> "ContainerConfig":
        """Variant sharing the host mount namespace (Table 3, bug E)."""
        return replace(self, unshare_flags=self.unshare_flags & ~CLONE_NEWNS,
                       pivot_root=False)


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to boot identical machines (cluster distribution)."""

    kernel: KernelConfig = field(default_factory=KernelConfig)
    bugs: BugFlags = field(default_factory=BugFlags)
    sender: ContainerConfig = field(default_factory=lambda: ContainerConfig(SENDER))
    receiver: ContainerConfig = field(default_factory=lambda: ContainerConfig(RECEIVER))


class Machine:
    """One bootable, snapshottable test machine."""

    def __init__(self, config: Optional[MachineConfig] = None):
        self.config = config or MachineConfig()
        self.kernel: Kernel = None  # type: ignore[assignment]
        self.sender_task: Task = None  # type: ignore[assignment]
        self.receiver_task: Task = None  # type: ignore[assignment]
        self.snapshot = self._boot_and_snapshot()
        self.reset()

    # -- boot ------------------------------------------------------------------

    def _boot_and_snapshot(self) -> Snapshot:
        kernel = Kernel(config=self.config.kernel, bugs=self.config.bugs)
        for container in (self.config.sender, self.config.receiver):
            task = kernel.spawn_task(uid=container.uid, comm=container.name)
            if container.unshare_flags:
                kernel.unshare(task, container.unshare_flags)
            if container.pivot_root and container.unshare_flags & CLONE_NEWNS:
                mnt_ns = task.nsproxy.get(NamespaceType.MNT)
                mnt_ns.mounts.clear()
                kernel.vfs.install_standard_tree(mnt_ns)
        return Snapshot.take(kernel, description="post-container-setup")

    # -- state control -----------------------------------------------------

    def reset(self, boot_offset_ns: Optional[int] = None) -> None:
        """Reload the snapshot (optionally with a rebased clock)."""
        kernel = self.snapshot.restore(boot_offset_ns)
        self._bind(kernel)

    def _bind(self, kernel: Kernel) -> None:
        self.kernel = kernel
        tasks = {task.comm: task for task in kernel.tasks.all_tasks()}
        self.sender_task = tasks[self.config.sender.name]
        self.receiver_task = tasks[self.config.receiver.name]

    def attach_tracer(self, tracer: Optional[KernelTracer]) -> None:
        self.kernel.attach_tracer(tracer)

    # -- execution ----------------------------------------------------------

    def task_for(self, container: str) -> Task:
        if container == SENDER:
            return self.sender_task
        if container == RECEIVER:
            return self.receiver_task
        raise ValueError(f"unknown container {container!r}")

    def run(self, container: str, program: TestProgram,
            profile: bool = False) -> ExecutionResult:
        """Execute *program* in *container* against the current state."""
        executor = Executor(self.kernel, self.task_for(container))
        return executor.run(program, profile=profile)
