"""The test-case executor — the Syzkaller-executor stand-in (§5.2).

Interprets a :class:`~repro.corpus.program.TestProgram` against a kernel
on behalf of a container task: resolves result references, issues the
syscalls, and records each call's outcome as a :class:`SyscallRecord`.

The record carries everything downstream stages need:

* decoded results (``details``) for the trace AST,
* the runtime resource kinds of fd arguments and of the produced fd —
  what the specification layer (§4.3.1) matches its rules against,
* a human-readable subject (e.g. the path behind an fd) for report
  aggregation signatures (§4.4).

When the kernel has a tracer attached and ``profile=True``, tracing is
enabled around each syscall and the per-call memory accesses (with
recovered call stacks) are returned alongside the records — KIT's
"execution trace" collection mode.  Profiling and plain trace collection
are separate runs in the paper because instrumentation perturbs timing;
here the separation is kept for fidelity of the pipeline structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..corpus.program import ConstArg, ResultArg, TestProgram
from ..faults.plan import SITE_EXEC_TIMEOUT, ExecTimeoutInjected, FaultPlan
from ..kernel.errno import SyscallError
from ..kernel.kernel import Kernel
from ..kernel.ktrace import MemAccess, walk_with_stack
from ..kernel.syscalls import DECLS
from ..kernel.task import Task

#: (access, call_stack) pairs for one syscall.
CallAccesses = List[Tuple[MemAccess, Tuple[int, ...]]]


@dataclass
class SyscallRecord:
    """The decoded outcome of one executed syscall."""

    index: int
    name: str
    args: Tuple[Any, ...]
    retval: int
    errno: int
    details: Dict[str, Any] = field(default_factory=dict)
    #: arg name -> runtime resource kind, for fd/res arguments.
    arg_kinds: Dict[str, str] = field(default_factory=dict)
    #: resource kind of the produced result, if the call creates one.
    ret_kind: Optional[str] = None
    #: arg name -> human-readable description (e.g. the fd's path).
    subjects: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.errno == 0

    def resource_kinds(self) -> List[str]:
        """Every resource kind this call touched or produced."""
        kinds = list(self.arg_kinds.values())
        if self.ret_kind is not None:
            kinds.append(self.ret_kind)
        return kinds

    def subject(self) -> str:
        """The primary subject (first fd description, or first str arg)."""
        for value in self.subjects.values():
            return value
        for value in self.args:
            if isinstance(value, str):
                return value
        return ""


@dataclass
class ExecutionResult:
    """All records of one program execution (holes for removed calls)."""

    records: List[Optional[SyscallRecord]]
    #: Per-call memory accesses; only populated in profiling mode.
    accesses: Optional[List[Optional[CallAccesses]]] = None

    def live_records(self) -> List[SyscallRecord]:
        return [record for record in self.records if record is not None]


class Executor:
    """Runs test programs for one container task."""

    def __init__(self, kernel: Kernel, task: Task,
                 faults: Optional[FaultPlan] = None):
        self.kernel = kernel
        self.task = task
        #: Campaign fault plan; every issued syscall is an occurrence of
        #: the ``exec.timeout`` injection site.
        self.faults = faults

    def run(self, program: TestProgram, profile: bool = False) -> ExecutionResult:
        session = SteppedExecution(self, program, profile=profile)
        while session.step():
            pass
        return session.result()

    # -- helpers -----------------------------------------------------------

    def execute_slot(self, program: TestProgram, index: int,
                     records: List[Optional[SyscallRecord]],
                     accesses: Optional[List[Optional[CallAccesses]]],
                     profile: bool) -> None:
        """Execute call slot *index*, appending to *records*/*accesses*."""
        call = program.calls[index]
        tracer = self.kernel.tracer
        if call is None:
            records.append(None)
            if accesses is not None:
                accesses.append(None)
            return
        if self.faults is not None \
                and self.faults.should_inject(SITE_EXEC_TIMEOUT):
            # A hung syscall: the execution cannot produce a trustworthy
            # trace, so the whole run is abandoned.  Recovery re-runs the
            # case from a fresh snapshot restore (see
            # repro.faults.plan.call_with_fault_retries), which is
            # exactly the clean run — no partial record survives.
            raise ExecTimeoutInjected(
                SITE_EXEC_TIMEOUT,
                f"injected timeout at call {index} ({call.name})")
        resolved = tuple(self._resolve(arg, records) for arg in call.args)
        record = SyscallRecord(index, call.name, resolved, retval=0, errno=0)
        self._collect_arg_kinds(record)
        if profile and tracer is not None:
            tracer.start()
        try:
            result = self.kernel.syscall(self.task, call.name, list(resolved))
            record.retval = result.retval
            record.details = result.details
        except SyscallError as error:
            record.retval = -1
            record.errno = error.errno
        finally:
            if profile and tracer is not None:
                tracer.stop()
                accesses.append(list(walk_with_stack(tracer.drain())))
        self._collect_ret_kind(record)
        records.append(record)
        # Timer interrupt between syscalls (background work, clock).
        self.kernel.timer_tick()

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _resolve(arg: Any, records: List[Optional[SyscallRecord]]) -> Any:
        if isinstance(arg, ConstArg):
            return arg.value
        if isinstance(arg, ResultArg):
            if arg.index >= len(records):
                return 0
            record = records[arg.index]
            if record is None or not record.ok or record.retval < 0:
                return 0
            return record.retval
        raise TypeError(f"unknown arg type {arg!r}")

    def _collect_arg_kinds(self, record: SyscallRecord) -> None:
        if record.name not in DECLS:
            return
        decl = DECLS.get(record.name)
        for spec, value in zip(decl.args, record.args):
            if spec.kind == "res":
                record.arg_kinds[spec.name] = spec.resource
            elif spec.kind == "fd" and isinstance(value, int):
                file_object = self.task.fdtable._fds.get(value)
                if file_object is not None:
                    record.arg_kinds[spec.name] = file_object.resource_kind
                    record.subjects[spec.name] = file_object.describe()

    def _collect_ret_kind(self, record: SyscallRecord) -> None:
        if not record.ok or record.name not in DECLS:
            return
        decl = DECLS.get(record.name)
        if decl.ret_resource is None:
            return
        if decl.ret_resource in ("fd_file", "fd_io_uring", "sock"):
            file_object = self.task.fdtable._fds.get(record.retval)
            if file_object is not None:
                record.ret_kind = file_object.resource_kind
                record.subjects.setdefault("ret", file_object.describe())
                return
        record.ret_kind = decl.ret_resource


class SteppedExecution:
    """One program's execution, advanced one syscall at a time.

    The concurrency extension (:mod:`repro.core.concurrent`) interleaves
    two of these — a sender's and a receiver's — under an explicit
    schedule; :meth:`Executor.run` is simply the all-at-once schedule.
    """

    def __init__(self, executor: Executor, program: TestProgram,
                 profile: bool = False):
        self._executor = executor
        self._program = program
        self._profile = profile
        self._records: List[Optional[SyscallRecord]] = []
        self._accesses: Optional[List[Optional[CallAccesses]]] = \
            [] if profile else None
        self._next = 0

    @property
    def done(self) -> bool:
        return self._next >= len(self._program.calls)

    @property
    def position(self) -> int:
        return self._next

    def step(self) -> bool:
        """Execute the next call slot; returns False when exhausted."""
        if self.done:
            return False
        self._executor.execute_slot(self._program, self._next,
                                    self._records, self._accesses,
                                    self._profile)
        self._next += 1
        return True

    def records_so_far(self) -> List[Optional[SyscallRecord]]:
        """Snapshot of the record slots executed so far (prefix memo)."""
        return list(self._records)

    def result(self) -> ExecutionResult:
        return ExecutionResult(list(self._records),
                               list(self._accesses)
                               if self._accesses is not None else None)
