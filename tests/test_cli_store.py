"""Tests for the command-line interface and the on-disk corpus store."""

import os

import pytest

from repro.cli import main
from repro.corpus.generator import build_corpus
from repro.corpus.program import prog
from repro.corpus.store import load_corpus, save_corpus


class TestCorpusStore:
    def test_roundtrip(self, tmp_path):
        corpus = build_corpus(25, seed=5)
        save_corpus(str(tmp_path), corpus)
        loaded = load_corpus(str(tmp_path))
        assert loaded.ok
        assert loaded.programs == corpus

    def test_index_preserves_order(self, tmp_path):
        corpus = build_corpus(10, seed=6)
        save_corpus(str(tmp_path), corpus)
        loaded = load_corpus(str(tmp_path))
        assert [p.hash_hex for p in loaded.programs] == \
            [p.hash_hex for p in corpus]

    def test_corrupted_file_reported(self, tmp_path):
        save_corpus(str(tmp_path), [prog(("getpid",),)])
        name = os.listdir(str(tmp_path))
        victim = [n for n in name if n.endswith(".prog")][0]
        with open(tmp_path / victim, "w") as handle:
            handle.write("!!! not a program !!!\n")
        loaded = load_corpus(str(tmp_path))
        assert not loaded.ok
        assert loaded.errors[0][0] == victim

    def test_hash_mismatch_reported(self, tmp_path):
        save_corpus(str(tmp_path), [prog(("getpid",),)])
        victim = [n for n in os.listdir(str(tmp_path))
                  if n.endswith(".prog")][0]
        with open(tmp_path / victim, "w") as handle:
            handle.write(prog(("gethostname",),).serialize() + "\n")
        loaded = load_corpus(str(tmp_path))
        assert "hash" in loaded.errors[0][1]

    def test_directory_without_index(self, tmp_path):
        program = prog(("getpid",),)
        with open(tmp_path / f"{program.hash_hex}.prog", "w") as handle:
            handle.write(program.serialize() + "\n")
        loaded = load_corpus(str(tmp_path))
        assert loaded.ok and loaded.programs == [program]

    def test_empty_corpus(self, tmp_path):
        save_corpus(str(tmp_path), [])
        assert load_corpus(str(tmp_path)).programs == []


class TestCli:
    def test_run_finds_bugs(self, capsys):
        assert main(["--kernel", "5.13", "run", "--corpus-size", "60"]) == 0
        output = capsys.readouterr().out
        assert "bugs found:" in output
        assert "'1'" in output

    def test_run_on_fixed_kernel_is_clean(self, capsys):
        assert main(["--kernel", "fixed", "run", "--corpus-size", "50"]) == 0
        assert "bugs found: none" in capsys.readouterr().out

    def test_known_bugs_subset(self, capsys):
        assert main(["known-bugs", "A", "G"]) == 0
        output = capsys.readouterr().out
        assert "A (kernel 4.4" in output
        assert "not detected" in output  # G

    def test_known_bugs_all_expected(self):
        assert main(["known-bugs"]) == 0

    def test_corpus_generate_and_inspect(self, tmp_path, capsys):
        directory = str(tmp_path / "corpus")
        assert main(["corpus", directory, "--generate",
                     "--corpus-size", "15"]) == 0
        assert main(["corpus", directory]) == 0
        assert "15 programs, 0 errors" in capsys.readouterr().out

    def test_run_from_corpus_dir(self, tmp_path, capsys):
        directory = str(tmp_path / "corpus")
        main(["corpus", directory, "--generate", "--corpus-size", "45"])
        assert main(["run", "--corpus-dir", directory]) == 0
        assert "corpus: 45 programs" in capsys.readouterr().out

    def test_show_decodes_and_executes(self, tmp_path, capsys):
        program = prog(("open", "/proc/net/sockstat", 0),
                       ("pread64", "r0", 512, 0))
        path = tmp_path / "probe.prog"
        path.write_text(program.serialize() + "\n")
        assert main(["show", str(path)]) == 0
        output = capsys.readouterr().out
        assert "sockets: used" in output

    def test_unknown_kernel_preset_exits(self):
        with pytest.raises(SystemExit):
            main(["--kernel", "windows", "run"])

    def test_reports_flag_prints_reports(self, capsys):
        assert main(["run", "--corpus-size", "50", "--reports"]) == 0
        assert "functional interference report" in capsys.readouterr().out

    def test_save_and_inspect_roundtrip(self, tmp_path, capsys):
        out = str(tmp_path / "campaign.json")
        assert main(["run", "--corpus-size", "50", "--save", out]) == 0
        capsys.readouterr()
        assert main(["inspect", out]) == 0
        output = capsys.readouterr().out
        assert "bugs found:" in output and "'1'" in output

    def test_coverage_subcommand(self, capsys):
        assert main(["coverage", "--corpus-size", "30"]) == 0
        output = capsys.readouterr().out
        assert "functions entered" in output

    def test_syscalls_doc_command(self, tmp_path, capsys):
        out = str(tmp_path / "surface.md")
        assert main(["syscalls", "--output", out]) == 0
        with open(out) as handle:
            assert "Simulated kernel syscall surface" in handle.read()

    def test_syscalls_to_stdout(self, capsys):
        assert main(["syscalls"]) == 0
        assert "| `socket` |" in capsys.readouterr().out

    def test_markdown_report_flag(self, tmp_path, capsys):
        out = str(tmp_path / "report.md")
        assert main(["run", "--corpus-size", "45", "--markdown", out]) == 0
        with open(out) as handle:
            assert "## Groups" in handle.read()

    def test_compare_command(self, capsys):
        assert main(["compare", "--corpus-size", "60"]) == 0
        output = capsys.readouterr().out
        assert "df-ia" in output and "rand" in output

    def test_spec_command(self, capsys):
        assert main(["spec"]) == 0
        output = capsys.readouterr().out
        assert "protected resource kinds:" in output
        assert "check_priority" in output

    def test_gate_passes_for_a_fix(self, capsys):
        assert main(["gate", "5.13", "fixed", "--corpus-size", "50"]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_gate_fails_on_introduced_interference(self, capsys):
        assert main(["gate", "fixed", "5.13", "--corpus-size", "50"]) == 1
        assert "GATE FAILED" in capsys.readouterr().out

    def test_jump_label_flag_blinds_df(self, capsys):
        assert main(["--jump-label", "run", "--corpus-size", "60"]) == 0
        output = capsys.readouterr().out
        assert "'2'" not in output  # flow-label bugs invisible to DF
