"""Property-based tests (hypothesis) for core data structures and invariants."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import DfIaStrategy, DfStStrategy
from repro.core.dataflow import AccessPoint, stack_sha1
from repro.core.trace_ast import (
    TraceNode,
    apply_nondet_marks,
    build_trace_ast,
    nondet_paths_from_runs,
    syscall_trace_cmp,
)
from repro.corpus.generator import ProgramGenerator
from repro.corpus.program import Call, ConstArg, ResultArg, TestProgram
from repro.kernel.ktrace import FuncEnter, FuncExit, MemAccess, walk_with_stack
from repro.kernel.memory import KDict, KernelArena, KList
from repro.vm.executor import SyscallRecord

# -- strategies ---------------------------------------------------------------

_names = st.text(alphabet=string.ascii_lowercase + "_", min_size=1, max_size=12)
_safe_strings = st.text(
    alphabet=string.ascii_letters + string.digits + " _/.,:-", max_size=20)
_const_args = st.one_of(
    st.integers(min_value=-2**31, max_value=2**63).map(ConstArg),
    _safe_strings.map(ConstArg),
)


@st.composite
def programs(draw):
    """Arbitrary well-formed test programs (backward result refs only)."""
    length = draw(st.integers(min_value=1, max_value=8))
    calls = []
    for index in range(length):
        arity = draw(st.integers(min_value=0, max_value=4))
        args = []
        for __ in range(arity):
            if index > 0 and draw(st.booleans()):
                args.append(ResultArg(draw(st.integers(0, index - 1))))
            else:
                args.append(draw(_const_args))
        calls.append(Call(draw(_names), tuple(args)))
    return TestProgram(calls)


@st.composite
def details_values(draw, depth=0):
    leaf = st.one_of(st.integers(-1000, 1000), _safe_strings,
                     st.text(alphabet="ab\n", max_size=12))
    if depth >= 2:
        return draw(leaf)
    return draw(st.one_of(
        leaf,
        st.lists(leaf, max_size=4),
        st.dictionaries(_names, leaf, max_size=4),
    ))


@st.composite
def syscall_records(draw):
    details = draw(st.dictionaries(_names, details_values(), max_size=4))
    return SyscallRecord(
        index=0,
        name=draw(_names),
        args=(),
        retval=draw(st.integers(-1, 1000)),
        errno=draw(st.sampled_from([0, 1, 2, 22])),
        details=details,
    )


_record_lists = st.lists(
    st.one_of(st.none(), syscall_records()), min_size=0, max_size=5)


# -- program model properties -------------------------------------------------

class TestProgramProperties:
    @given(programs())
    def test_serialize_parse_roundtrip(self, program):
        assert TestProgram.parse(program.serialize()) == program

    @given(programs())
    def test_hash_stable_under_roundtrip(self, program):
        assert TestProgram.parse(program.serialize()).hash_hex == program.hash_hex

    @given(programs(), st.data())
    def test_without_call_keeps_length_and_numbering(self, program, data):
        index = data.draw(st.integers(0, len(program) - 1))
        removed = program.without_call(index)
        assert len(removed) == len(program)
        assert removed.calls[index] is None
        for i, call in enumerate(removed.calls):
            if i != index:
                assert call == program.calls[i]

    @given(programs(), programs())
    def test_concatenate_preserves_reference_targets(self, first, second):
        joined = first.concatenate(second)
        offset = len(first)
        for i, call in enumerate(second.calls):
            if call is None:
                continue
            joined_call = joined.calls[offset + i]
            for orig, rebased in zip(call.args, joined_call.args):
                if isinstance(orig, ResultArg):
                    assert rebased == ResultArg(orig.index + offset)
                else:
                    assert rebased == orig

    @given(programs())
    def test_live_indices_complete_and_sorted(self, program):
        live = program.live_call_indices()
        assert live == sorted(live)
        assert len(live) == sum(1 for c in program.calls if c is not None)


# -- trace AST properties ------------------------------------------------------

class TestTraceAstProperties:
    @given(_record_lists)
    def test_compare_is_reflexive(self, records):
        a = build_trace_ast(records)
        b = build_trace_ast(records)
        assert syscall_trace_cmp(a, b) == []

    @given(_record_lists, _record_lists)
    def test_diff_count_symmetric(self, first, second):
        a1, b1 = build_trace_ast(first), build_trace_ast(second)
        a2, b2 = build_trace_ast(first), build_trace_ast(second)
        assert len(syscall_trace_cmp(a1, b1)) == len(syscall_trace_cmp(b2, a2))

    @given(_record_lists, _record_lists)
    def test_diff_paths_exist_in_at_least_one_tree(self, first, second):
        a, b = build_trace_ast(first), build_trace_ast(second)
        for diff in syscall_trace_cmp(a, b):
            assert a.at(diff.path) is not None
            assert b.at(diff.path) is not None

    @given(st.lists(_record_lists, min_size=2, max_size=4))
    def test_marks_from_runs_silence_all_pairwise_diffs(self, runs):
        """The defining property of non-determinism marks: after applying
        them, any two of the runs compare clean."""
        trees = [build_trace_ast(records) for records in runs]
        marks = nondet_paths_from_runs(trees)
        for i in range(len(runs)):
            for j in range(len(runs)):
                a = apply_nondet_marks(build_trace_ast(runs[i]), marks)
                b = apply_nondet_marks(build_trace_ast(runs[j]), marks)
                assert syscall_trace_cmp(a, b) == []

    @given(_record_lists)
    def test_identical_runs_produce_no_marks(self, records):
        trees = [build_trace_ast(records) for __ in range(3)]
        assert nondet_paths_from_runs(trees) == frozenset()

    @given(_record_lists)
    def test_walk_paths_are_unique(self, records):
        tree = build_trace_ast(records)
        paths = [path for path, __ in tree.walk()]
        assert len(paths) == len(set(paths))


# -- dataflow / clustering properties -----------------------------------------

_points = st.builds(
    AccessPoint,
    prog_index=st.integers(0, 50),
    call_index=st.integers(0, 10),
    addr=st.integers(0, 2**40),
    width=st.sampled_from([1, 2, 4, 8]),
    ip=st.integers(0, 2**20),
    stack=st.lists(st.integers(0, 500), max_size=6).map(tuple),
)


class TestClusteringProperties:
    @given(st.lists(_points, min_size=1, max_size=40))
    def test_deeper_stacks_refine_clusters(self, points):
        """DF-IA <= DF-ST-1 <= DF-ST-2 group counts (Table 4's ordering)."""
        ia = {DfIaStrategy().write_key(p) for p in points}
        st1 = {DfStStrategy(1).write_key(p) for p in points}
        st2 = {DfStStrategy(2).write_key(p) for p in points}
        assert len(ia) <= len(st1) <= len(st2)

    @given(_points, _points)
    def test_st_key_equality_implies_ia_key_equality(self, a, b):
        strategy = DfStStrategy(2)
        if strategy.write_key(a) == strategy.write_key(b):
            assert DfIaStrategy().write_key(a) == DfIaStrategy().write_key(b)

    @given(st.lists(st.integers(0, 10**6), max_size=8).map(tuple))
    def test_stack_sha1_deterministic(self, stack):
        assert stack_sha1(stack) == stack_sha1(stack)
        assert len(stack_sha1(stack)) == 40

    @given(_points, st.integers(1, 4))
    def test_stack_suffix_is_a_suffix(self, point, depth):
        suffix = point.stack_suffix(depth)
        assert len(suffix) <= depth
        assert point.stack[len(point.stack) - len(suffix):] == suffix


# -- traced containers vs. plain models -----------------------------------------

class TestContainerModelProperties:
    @given(st.lists(st.tuples(st.sampled_from(["append", "pop", "remove"]),
                              st.integers(0, 5)), max_size=30))
    def test_klist_behaves_like_list(self, operations):
        arena = KernelArena()
        klist = KList(arena)
        model = []
        for op, value in operations:
            if op == "append":
                klist.append(value)
                model.append(value)
            elif op == "pop" and model:
                assert klist.pop_front() == model.pop(0)
            elif op == "remove" and value in model:
                klist.remove(value)
                model.remove(value)
        assert klist.peek_items() == model

    @given(st.lists(st.tuples(st.sampled_from(["insert", "delete", "lookup"]),
                              st.integers(0, 5), st.integers(0, 100)),
                    max_size=30))
    def test_kdict_behaves_like_dict(self, operations):
        arena = KernelArena()
        kdict = KDict(arena)
        model = {}
        for op, key, value in operations:
            if op == "insert":
                kdict.insert(key, value)
                model[key] = value
            elif op == "delete" and key in model:
                kdict.delete(key)
                del model[key]
            else:
                assert kdict.lookup(key) == model.get(key)
        assert kdict.peek_items() == model


# -- tracer stack recovery property ------------------------------------------------

@st.composite
def balanced_traces(draw):
    """Well-nested enter/exit sequences with interleaved accesses."""
    entries = []
    expected = []  # (addr, stack) for each access
    stack = []

    def emit(depth):
        for __ in range(draw(st.integers(0, 3))):
            choice = draw(st.sampled_from(["access", "call"]))
            if choice == "access" or depth >= 3:
                addr = draw(st.integers(0, 1000))
                entries.append(MemAccess(addr, 8, False, 0))
                expected.append((addr, tuple(stack)))
            else:
                func_id = draw(st.integers(0, 20))
                entries.append(FuncEnter(func_id))
                stack.append(func_id)
                emit(depth + 1)
                entries.append(FuncExit(func_id))
                stack.pop()

    emit(0)
    return entries, expected


class TestTracerProperties:
    @given(balanced_traces())
    def test_stack_recovery_matches_construction(self, trace):
        entries, expected = trace
        recovered = [(a.addr, stack) for a, stack in walk_with_stack(entries)]
        assert recovered == expected


# -- generator properties ----------------------------------------------------------

class TestGeneratorProperties:
    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_generated_programs_parse_and_roundtrip(self, seed):
        generator = ProgramGenerator(seed=seed)
        for __ in range(5):
            program = generator.generate()
            assert TestProgram.parse(program.serialize()) == program

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_mutation_never_breaks_backward_references(self, seed):
        generator = ProgramGenerator(seed=seed)
        program = generator.generate(length=4)
        for __ in range(10):
            program = generator.mutate(program)
            for index, call in enumerate(program.calls):
                if call is None:
                    continue
                assert all(ref < index for ref in call.references())
