"""Every syscall in the handler table has a syzlang-lite declaration.

The corpus generator, the specification layer and the static analyzer
all key off the declaration registry; a handler registered without a
declaration (or vice versa) silently falls out of all three.
"""

from __future__ import annotations

from repro.analysis.sources import KernelSourceIndex
from repro.analysis.accessmap import discover_handlers
from repro.kernel.syscalls.table import DECLS, HANDLERS


def test_every_handler_is_declared():
    assert set(HANDLERS) == set(DECLS.names())


def test_every_declaration_has_a_handler():
    for decl in DECLS.all():
        assert decl.name in HANDLERS


def test_static_analyzer_sees_the_same_table():
    index = KernelSourceIndex()
    assert set(discover_handlers(index)) == set(HANDLERS)


def test_resource_args_carry_kinds():
    """fd/res arguments always name a resource kind — the spec layer's
    protected-resource selection depends on it."""
    for decl in DECLS.all():
        for arg in decl.resource_args():
            assert arg.resource, (decl.name, arg.name)
