"""Unit tests for SysV IPC, UTS, crypto, io_uring, fd tables, clock, errno."""

import pytest

from repro.kernel import Kernel, fixed_kernel
from repro.kernel.bugs import BugFlags
from repro.kernel.clock import TICK_NS, VirtualClock
from repro.kernel.errno import (
    EBADF,
    EEXIST,
    EIDRM,
    EINVAL,
    EMFILE,
    ENOENT,
    ENOMSG,
    ENOSPC,
    SyscallError,
    errno_name,
)
from repro.kernel.fdtable import FdTable, FileObject
from repro.kernel.ipc import IPC_CREAT, IPC_EXCL, IPC_PRIVATE, IPC_RMID, IPC_STAT
from repro.kernel.namespaces import (
    ALL_NAMESPACE_FLAGS,
    CLONE_NEWIPC,
    CLONE_NEWPID,
    CLONE_NEWUTS,
    NamespaceType,
)


@pytest.fixture
def kernel():
    return Kernel()


def ipc_pair(bugs=None):
    kernel = Kernel(bugs=bugs or fixed_kernel())
    sender = kernel.spawn_task(comm="s")
    receiver = kernel.spawn_task(comm="r")
    kernel.unshare(sender, CLONE_NEWIPC | CLONE_NEWPID)
    kernel.unshare(receiver, CLONE_NEWIPC | CLONE_NEWPID)
    return kernel, sender, receiver


class TestMsgQueues:
    def test_create_and_stat(self, kernel):
        task = kernel.spawn_task()
        msqid = kernel.ipc.msgget(task, 0xAA, IPC_CREAT)
        stat = kernel.ipc.msgctl(task, msqid, IPC_STAT)
        assert stat["msg_qnum"] == 0

    def test_key_reuse_returns_same_queue(self, kernel):
        task = kernel.spawn_task()
        first = kernel.ipc.msgget(task, 0xAA, IPC_CREAT)
        second = kernel.ipc.msgget(task, 0xAA, IPC_CREAT)
        assert first == second

    def test_excl_on_existing_key_is_eexist(self, kernel):
        task = kernel.spawn_task()
        kernel.ipc.msgget(task, 0xAA, IPC_CREAT)
        with pytest.raises(SyscallError) as info:
            kernel.ipc.msgget(task, 0xAA, IPC_CREAT | IPC_EXCL)
        assert info.value.errno == EEXIST

    def test_get_without_creat_missing_key_fails(self, kernel):
        task = kernel.spawn_task()
        with pytest.raises(SyscallError):
            kernel.ipc.msgget(task, 0x77, 0)

    def test_ipc_private_always_creates(self, kernel):
        task = kernel.spawn_task()
        first = kernel.ipc.msgget(task, IPC_PRIVATE, IPC_CREAT)
        second = kernel.ipc.msgget(task, IPC_PRIVATE, IPC_CREAT)
        assert first != second

    def test_send_receive_fifo(self, kernel):
        task = kernel.spawn_task()
        msqid = kernel.ipc.msgget(task, IPC_PRIVATE, IPC_CREAT)
        kernel.ipc.msgsnd(task, msqid, 1, "first")
        kernel.ipc.msgsnd(task, msqid, 1, "second")
        assert kernel.ipc.msgrcv(task, msqid) == "first"
        assert kernel.ipc.msgrcv(task, msqid) == "second"

    def test_receive_empty_is_enomsg(self, kernel):
        task = kernel.spawn_task()
        msqid = kernel.ipc.msgget(task, IPC_PRIVATE, IPC_CREAT)
        with pytest.raises(SyscallError) as info:
            kernel.ipc.msgrcv(task, msqid)
        assert info.value.errno == ENOMSG

    def test_rmid_removes_queue(self, kernel):
        task = kernel.spawn_task()
        msqid = kernel.ipc.msgget(task, 0xAA, IPC_CREAT)
        kernel.ipc.msgctl(task, msqid, IPC_RMID)
        with pytest.raises(SyscallError):
            kernel.ipc.msgsnd(task, msqid, 1, "x")

    def test_quota_enforced_per_namespace(self, kernel):
        task = kernel.spawn_task()
        ns = task.nsproxy.get(NamespaceType.IPC)
        for __ in range(ns.msg_quota):
            kernel.ipc.msgget(task, IPC_PRIVATE, IPC_CREAT)
        with pytest.raises(SyscallError) as info:
            kernel.ipc.msgget(task, IPC_PRIVATE, IPC_CREAT)
        assert info.value.errno == ENOSPC

    def test_queues_isolated_across_namespaces(self):
        kernel, sender, receiver = ipc_pair()
        msqid = kernel.ipc.msgget(sender, 0xAA, IPC_CREAT)
        with pytest.raises(SyscallError):
            kernel.ipc.msgsnd(receiver, msqid, 1, "x")

    def test_same_key_different_namespaces_different_queues(self):
        kernel, sender, receiver = ipc_pair()
        kernel.ipc.msgget(sender, 0xAA, IPC_CREAT)
        msqid = kernel.ipc.msgget(receiver, 0xAA, IPC_CREAT)
        kernel.ipc.msgsnd(receiver, msqid, 1, "mine")
        assert kernel.ipc.msgrcv(receiver, msqid) == "mine"


class TestMsgStatPidLeak:
    """The §2.1 historical bug: IPC_STAT leaking raw global PIDs."""

    def test_buggy_kernel_reports_global_pid(self):
        kernel, sender, __ = ipc_pair(BugFlags(msg_stat_global_pid=True))
        msqid = kernel.ipc.msgget(sender, IPC_PRIVATE, IPC_CREAT)
        kernel.ipc.msgsnd(sender, msqid, 1, "x")
        stat = kernel.ipc.msgctl(sender, msqid, IPC_STAT)
        # The sender's pid in its own (fresh) pid ns is 1; the raw global
        # pid is larger.
        assert stat["msg_lspid"] > 1

    def test_fixed_kernel_translates_pid(self):
        kernel, sender, __ = ipc_pair()
        msqid = kernel.ipc.msgget(sender, IPC_PRIVATE, IPC_CREAT)
        kernel.ipc.msgsnd(sender, msqid, 1, "x")
        stat = kernel.ipc.msgctl(sender, msqid, IPC_STAT)
        assert stat["msg_lspid"] == sender.pid == 1

    def test_fixed_kernel_reports_zero_for_invisible_task(self):
        kernel, sender, receiver = ipc_pair()
        # Same IPC namespace for both, separate PID namespaces.
        shared = kernel.ipc.msgget(sender, IPC_PRIVATE, IPC_CREAT)
        kernel.ipc.msgsnd(sender, shared, 1, "x")
        receiver.nsproxy = receiver.nsproxy.copy_with(
            {NamespaceType.IPC: sender.nsproxy.get(NamespaceType.IPC)})
        stat = kernel.ipc.msgctl(receiver, shared, IPC_STAT)
        assert stat["msg_lspid"] == 0


class TestShmSem:
    def test_shmget_and_stat(self, kernel):
        task = kernel.spawn_task()
        shmid = kernel.ipc.shmget(task, 0xCC, 4096, IPC_CREAT)
        stat = kernel.ipc.shmctl(task, shmid, IPC_STAT)
        assert stat["shm_segsz"] == 4096

    def test_shmget_zero_size_is_einval(self, kernel):
        task = kernel.spawn_task()
        with pytest.raises(SyscallError) as info:
            kernel.ipc.shmget(task, 0xCC, 0, IPC_CREAT)
        assert info.value.errno == EINVAL

    def test_shm_rmid(self, kernel):
        task = kernel.spawn_task()
        shmid = kernel.ipc.shmget(task, IPC_PRIVATE, 4096, IPC_CREAT)
        kernel.ipc.shmctl(task, shmid, IPC_RMID)
        with pytest.raises(SyscallError):
            kernel.ipc.shmctl(task, shmid, IPC_STAT)

    def test_semget_bounds(self, kernel):
        task = kernel.spawn_task()
        assert kernel.ipc.semget(task, IPC_PRIVATE, 4, IPC_CREAT) > 0
        with pytest.raises(SyscallError):
            kernel.ipc.semget(task, IPC_PRIVATE, 0, IPC_CREAT)
        with pytest.raises(SyscallError):
            kernel.ipc.semget(task, IPC_PRIVATE, 1000, IPC_CREAT)


class TestUts:
    def test_hostname_isolated_after_unshare(self, kernel):
        task = kernel.spawn_task()
        kernel.unshare(task, CLONE_NEWUTS)
        task.nsproxy.get(NamespaceType.UTS).set_hostname("inner")
        assert kernel.init_nsproxy.get(NamespaceType.UTS).get_hostname() == "kit-vm"

    def test_unshare_copies_current_hostname(self, kernel):
        task = kernel.spawn_task()
        kernel.init_nsproxy.get(NamespaceType.UTS).set_hostname("custom")
        task2 = kernel.spawn_task()
        kernel.unshare(task2, CLONE_NEWUTS)
        assert task2.nsproxy.get(NamespaceType.UTS).get_hostname() == "custom"

    def test_hostname_validation(self, kernel):
        uts = kernel.init_nsproxy.get(NamespaceType.UTS)
        with pytest.raises(SyscallError):
            uts.set_hostname("")
        with pytest.raises(SyscallError):
            uts.set_hostname("x" * 100)


class TestCrypto:
    def test_alloc_bumps_refcnt_globally(self, kernel):
        task = kernel.spawn_task()
        before = kernel.crypto.render_proc_crypto(task)
        kernel.crypto.crypto_alloc(task, "sha256")
        after = kernel.crypto.render_proc_crypto(task)
        assert before != after

    def test_alloc_unknown_algorithm_is_enoent(self, kernel):
        task = kernel.spawn_task()
        with pytest.raises(SyscallError) as info:
            kernel.crypto.crypto_alloc(task, "rot13")
        assert info.value.errno == ENOENT

    def test_proc_crypto_identical_across_namespaces(self, kernel):
        task = kernel.spawn_task()
        kernel.unshare(task, ALL_NAMESPACE_FLAGS)
        assert kernel.crypto.render_proc_crypto(task) == \
            kernel.crypto.render_proc_crypto(kernel.init_task)


class TestFdTable:
    def test_first_fd_is_three(self):
        table = FdTable()
        assert table.install(FileObject()) == 3

    def test_lowest_free_slot_reused(self):
        table = FdTable()
        table.install(FileObject())
        fd = table.install(FileObject())
        table.remove(fd)
        assert table.install(FileObject()) == fd

    def test_bad_fd_is_ebadf(self):
        table = FdTable()
        with pytest.raises(SyscallError) as info:
            table.get(77)
        assert info.value.errno == EBADF

    def test_non_integer_fd_is_ebadf(self):
        table = FdTable()
        with pytest.raises(SyscallError):
            table.get("nope")

    def test_table_full_is_emfile(self):
        table = FdTable(max_fds=5)
        table.install(FileObject())
        table.install(FileObject())
        with pytest.raises(SyscallError) as info:
            table.install(FileObject())
        assert info.value.errno == EMFILE

    def test_get_as_enforces_type(self):
        class Special(FileObject):
            pass

        table = FdTable()
        fd = table.install(FileObject())
        with pytest.raises(SyscallError):
            table.get_as(fd, Special)


class TestClock:
    def test_tick_advances_time(self):
        clock = VirtualClock()
        start = clock.now_ns()
        clock.tick(3)
        assert clock.now_ns() == start + 3 * TICK_NS

    def test_uptime_independent_of_boot_offset(self):
        clock = VirtualClock(boot_offset_ns=123)
        clock.tick(5)
        assert clock.uptime_ns() == 5 * TICK_NS

    def test_rebase_shifts_now_not_uptime(self):
        clock = VirtualClock()
        clock.tick(2)
        clock.rebase(10**18)
        assert clock.now_ns() == 10**18 + 2 * TICK_NS
        assert clock.uptime_ns() == 2 * TICK_NS


class TestErrno:
    def test_known_names(self):
        assert errno_name(1) == "EPERM"
        assert errno_name(2) == "ENOENT"
        assert errno_name(98) == "EADDRINUSE"

    def test_unknown_name(self):
        assert errno_name(9999) == "E?9999"

    def test_syscall_error_carries_errno(self):
        error = SyscallError(EIDRM)
        assert error.errno == EIDRM
        assert "EIDRM" in str(error)


class TestIoUring:
    def test_read_follows_own_namespace_on_fixed_kernel(self, kernel):
        task = kernel.spawn_task()
        open_file = kernel.vfs.open(task, "/tmp/secret", 0o100)
        kernel.vfs.write_file(task, open_file, "data", 0)
        assert kernel.iouring.read_path(task, "/tmp/secret", 100) == "data"

    def test_buggy_kernel_escapes_mount_namespace(self):
        kernel = Kernel(bugs=BugFlags(iouring_wrong_mnt_ns=True))
        host = kernel.init_task
        kernel.vfs.write_file(host, kernel.vfs.open(host, "/tmp/host-secret",
                                                    0o100), "leak", 0)
        container = kernel.spawn_task()
        kernel.unshare(container, ALL_NAMESPACE_FLAGS)
        kernel.vfs.umount(container, "/tmp")
        assert "host-secret" in kernel.iouring.list_path(container, "/tmp")

    def test_fixed_kernel_respects_umount(self):
        kernel = Kernel()
        host = kernel.init_task
        kernel.vfs.open(host, "/tmp/host-secret", 0o100)
        container = kernel.spawn_task()
        kernel.unshare(container, ALL_NAMESPACE_FLAGS)
        kernel.vfs.umount(container, "/tmp")
        assert "host-secret" not in kernel.iouring.list_path(container, "/tmp")

    def test_read_of_directory_is_eisdir(self, kernel):
        task = kernel.spawn_task()
        with pytest.raises(SyscallError):
            kernel.iouring.read_path(task, "/tmp", 10)

    def test_list_of_file_is_enotdir(self, kernel):
        task = kernel.spawn_task()
        kernel.vfs.open(task, "/tmp/f", 0o100)
        with pytest.raises(SyscallError):
            kernel.iouring.list_path(task, "/tmp/f")
