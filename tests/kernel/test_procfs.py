"""Unit tests for procfs rendering and sysctl writes."""

import pytest

from repro.kernel import Kernel, linux_5_13
from repro.kernel.errno import EACCES, EINVAL, SyscallError
from repro.kernel.namespaces import CLONE_NEWNET, CLONE_NEWUTS, NamespaceType


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def task(kernel):
    return kernel.spawn_task()


class TestLayout:
    def test_root_listing(self, kernel, task):
        assert "net" in kernel.procfs.list_dir("")
        assert "crypto" in kernel.procfs.list_dir("")

    def test_net_listing(self, kernel):
        names = kernel.procfs.list_dir("net")
        for expected in ("ptype", "sockstat", "protocols", "ip_vs",
                         "nf_conntrack", "unix", "dev"):
            assert expected in names

    def test_unknown_dir_lists_empty(self, kernel):
        assert kernel.procfs.list_dir("bogus") == []

    def test_lookup_creates_inode_once(self, kernel, task):
        mount, __ = kernel.vfs.resolve(task, "/proc")
        first = kernel.procfs.lookup(mount.sb, "net/ptype")
        second = kernel.procfs.lookup(mount.sb, "net/ptype")
        assert first is second

    def test_lookup_unknown_returns_none(self, kernel, task):
        mount, __ = kernel.vfs.resolve(task, "/proc")
        assert kernel.procfs.lookup(mount.sb, "net/bogus") is None


class TestRendering:
    def test_version_mentions_kernel_version(self, kernel, task):
        assert "5.13" in kernel.procfs.render(task, "version")

    def test_uptime_advances_with_clock(self, kernel, task):
        before = kernel.procfs.render(task, "uptime")
        kernel.clock.tick(10_000)
        after = kernel.procfs.render(task, "uptime")
        assert before != after

    def test_meminfo_total_is_stable_free_varies(self, kernel, task):
        before = kernel.procfs.render(task, "meminfo")
        kernel.clock.tick(10_000)
        after = kernel.procfs.render(task, "meminfo")
        assert before.splitlines()[0] == after.splitlines()[0]
        assert before.splitlines()[1] != after.splitlines()[1]

    def test_hostname_follows_uts_namespace(self, kernel):
        task = kernel.spawn_task()
        kernel.unshare(task, CLONE_NEWUTS)
        uts = task.nsproxy.get(NamespaceType.UTS)
        uts.set_hostname("inside")
        assert kernel.procfs.render(task, "sys/kernel/hostname") == "inside\n"
        assert kernel.procfs.render(kernel.init_task,
                                    "sys/kernel/hostname") == "kit-vm\n"

    def test_net_files_render_for_reader_namespace(self, kernel):
        task = kernel.spawn_task()
        kernel.unshare(task, CLONE_NEWNET)
        content = kernel.procfs.render(task, "net/dev")
        assert "lo" in content

    def test_unknown_key_is_einval(self, kernel, task):
        with pytest.raises(SyscallError) as info:
            kernel.procfs.render(task, "nonsense")
        assert info.value.errno == EINVAL


class TestWrites:
    def test_write_conntrack_max(self, kernel, task):
        kernel.procfs.write(task, "sys/net/netfilter/nf_conntrack_max", "1234\n")
        assert kernel.procfs.render(
            task, "sys/net/netfilter/nf_conntrack_max") == "1234\n"

    def test_write_conntrack_max_garbage_is_einval(self, kernel, task):
        with pytest.raises(SyscallError) as info:
            kernel.procfs.write(task, "sys/net/netfilter/nf_conntrack_max", "abc")
        assert info.value.errno == EINVAL

    def test_write_hostname(self, kernel, task):
        kernel.procfs.write(task, "sys/kernel/hostname", "newname\n")
        assert kernel.procfs.render(task, "sys/kernel/hostname") == "newname\n"

    def test_write_readonly_file_is_eacces(self, kernel, task):
        with pytest.raises(SyscallError) as info:
            kernel.procfs.write(task, "crypto", "x")
        assert info.value.errno == EACCES


class TestSockstatIsolation:
    """The sockstat counters: buggy kernel leaks, fixed kernel isolates."""

    def _setup(self, bugs):
        kernel = Kernel(bugs=bugs)
        sender = kernel.spawn_task(comm="s")
        receiver = kernel.spawn_task(comm="r")
        kernel.unshare(sender, CLONE_NEWNET)
        kernel.unshare(receiver, CLONE_NEWNET)
        return kernel, sender, receiver

    def test_buggy_used_counter_leaks(self):
        kernel, sender, receiver = self._setup(linux_5_13())
        kernel.syscall(sender, "socket", [2, 1, 6])
        content = kernel.procfs.render(receiver, "net/sockstat")
        assert "sockets: used 1" in content

    def test_fixed_used_counter_is_per_namespace(self):
        from repro.kernel import fixed_kernel

        kernel, sender, receiver = self._setup(fixed_kernel())
        kernel.syscall(sender, "socket", [2, 1, 6])
        content = kernel.procfs.render(receiver, "net/sockstat")
        assert "sockets: used 0" in content

    def test_inuse_is_always_per_namespace(self):
        kernel, sender, receiver = self._setup(linux_5_13())
        kernel.syscall(sender, "socket", [2, 1, 6])
        content = kernel.procfs.render(receiver, "net/sockstat")
        assert "TCP: inuse 0" in content
