"""Tests for veth pairs: the authorized cross-namespace channel (§2)."""

import pytest

from repro.core import Detector, Outcome, TestCase, TriageSession, aggregate
from repro.core.oracle import classify
from repro.core.spec import default_specification
from repro.corpus.program import prog
from repro.kernel import Kernel, fixed_kernel
from repro.kernel.errno import EEXIST, EINVAL, EPERM, SyscallError
from repro.kernel.namespaces import CLONE_NEWNET, NamespaceType
from repro.vm import Machine, MachineConfig
from repro.vm.executor import Executor

ADDR = 0x0A000001


@pytest.fixture
def kernel():
    return Kernel()


def netns(task):
    return task.nsproxy.get(NamespaceType.NET)


def wire(kernel, left, right):
    kernel.netdev.create_veth_pair(left, netns(left), netns(right), "veth0")


class TestVethCreation:
    def test_both_ends_exist(self, kernel):
        left = kernel.spawn_task()
        right = kernel.spawn_task()
        kernel.unshare(left, CLONE_NEWNET)
        kernel.unshare(right, CLONE_NEWNET)
        wire(kernel, left, right)
        assert netns(left).devices.lookup("veth0") is not None
        assert netns(right).devices.lookup("veth0-peer") is not None

    def test_same_namespace_rejected(self, kernel):
        task = kernel.spawn_task()
        with pytest.raises(SyscallError) as info:
            kernel.netdev.create_veth_pair(task, netns(task), netns(task),
                                           "veth0")
        assert info.value.errno == EINVAL

    def test_requires_cap_net_admin(self, kernel):
        user = kernel.spawn_task(uid=1000)
        other = kernel.spawn_task()
        kernel.unshare(other, CLONE_NEWNET)
        with pytest.raises(SyscallError) as info:
            kernel.netdev.create_veth_pair(user, netns(user), netns(other),
                                           "veth0")
        assert info.value.errno == EPERM

    def test_peer_name_collision_rejected(self, kernel):
        left = kernel.spawn_task()
        right = kernel.spawn_task()
        kernel.unshare(left, CLONE_NEWNET)
        kernel.unshare(right, CLONE_NEWNET)
        kernel.netdev.register_netdev(right, netns(right), "veth0-peer")
        with pytest.raises(SyscallError) as info:
            wire(kernel, left, right)
        assert info.value.errno == EEXIST

    def test_syscall_surface_via_ns_fd(self, kernel):
        """veth_create takes the peer namespace as an nsfs descriptor."""
        task = kernel.spawn_task()
        result = Executor(kernel, task).run(prog(
            ("open", "/proc/self/ns/net", 0),   # capture initial net ns
            ("unshare", CLONE_NEWNET),
            ("veth_create", "veth0", "r0"),
        ))
        assert all(record.ok for record in result.live_records())
        assert netns(task).devices.lookup("veth0") is not None
        assert kernel.init_net.devices.lookup("veth0-peer") is not None


class TestVethDelivery:
    def _pair(self, kernel):
        left = kernel.spawn_task()
        right = kernel.spawn_task()
        kernel.unshare(left, CLONE_NEWNET)
        kernel.unshare(right, CLONE_NEWNET)
        wire(kernel, left, right)
        return left, right

    def test_datagrams_cross_the_link(self, kernel):
        left, right = self._pair(kernel)
        rx = kernel.net.socket_create(right, 2, 2, 17)
        kernel.net.bind(right, rx, ADDR, 9000)
        tx = kernel.net.socket_create(left, 2, 2, 17)
        kernel.net.sendto(left, tx, 5, ADDR, 9000)
        assert kernel.net.recvfrom(right, rx, 100) == "xxxxx"

    def test_unlinked_namespaces_stay_isolated(self, kernel):
        left = kernel.spawn_task()
        right = kernel.spawn_task()
        kernel.unshare(left, CLONE_NEWNET)
        kernel.unshare(right, CLONE_NEWNET)
        rx = kernel.net.socket_create(right, 2, 2, 17)
        kernel.net.bind(right, rx, ADDR, 9000)
        tx = kernel.net.socket_create(left, 2, 2, 17)
        kernel.net.sendto(left, tx, 5, ADDR, 9000)
        with pytest.raises(SyscallError):
            kernel.net.recvfrom(right, rx, 100)

    def test_local_delivery_takes_precedence(self, kernel):
        left, right = self._pair(kernel)
        local_rx = kernel.net.socket_create(left, 2, 2, 17)
        kernel.net.bind(left, local_rx, ADDR, 9000)
        remote_rx = kernel.net.socket_create(right, 2, 2, 17)
        kernel.net.bind(right, remote_rx, ADDR, 9000)
        tx = kernel.net.socket_create(left, 2, 2, 17)
        kernel.net.sendto(left, tx, 3, ADDR, 9000)
        assert kernel.net.recvfrom(left, local_rx, 100) == "xxx"
        with pytest.raises(SyscallError):
            kernel.net.recvfrom(right, remote_rx, 100)


class TestLegitimateCommunicationTriage:
    """The §2 scenario: interference through an authorized channel is
    real, KIT reports it, and the user dismisses it in triage — it is
    not a kernel bug even on a fully patched kernel."""

    def _case(self):
        # Container setup (pre-snapshot) cannot wire namespaces here, so
        # the receiver itself builds the channel to the sender's ns via
        # an nsfs descriptor — then listens on it.
        sender = prog(
            ("socket", 2, 2, 17),
            ("sendto", "r0", 5, ADDR, 9000),
            ("sendto", "r0", 5, ADDR, 9000),
        )
        receiver = prog(
            ("open", "/proc/self/ns/net", 0),
            ("unshare", CLONE_NEWNET),
            ("veth_create", "veth0", "r0"),
            ("socket", 2, 2, 17),
            ("bind", "r3", ADDR, 9000),
            ("recvfrom", "r3", 100),
        )
        return sender, receiver

    def test_reported_on_fixed_kernel_and_triaged_away(self):
        machine = Machine(MachineConfig(bugs=fixed_kernel()))
        detector = Detector(machine, default_specification())
        sender, receiver = self._case()
        # The receiver unshares into a fresh netns wired back to its
        # container netns; the sender's datagram to that container netns
        # cannot arrive (sender is in a third namespace) — so this stays
        # quiet across containers.  Wire within ONE kernel directly to
        # demonstrate the channel + triage flow instead:
        kernel = machine.kernel
        result = detector.check_case(TestCase(0, 1, sender, receiver))
        if result.report is None:
            # No cross-container divergence: isolation held. The triage
            # demonstration below uses a direct same-kernel setup.
            assert result.outcome in (Outcome.PASS, Outcome.FILTERED_NONDET)
            return
        groups = aggregate([result.report])
        session = TriageSession(groups)
        key = session.pending_groups()[0]
        session.drop_false_positive(key, note="authorized veth channel")
        assert not session.pending_groups()

    def test_direct_channel_is_observable_but_authorized(self, kernel):
        """Same-kernel demonstration that the channel carries data and a
        human labels it authorized rather than a bug."""
        left, right = self._direct_pair(kernel)
        rx = kernel.net.socket_create(right, 2, 2, 17)
        kernel.net.bind(right, rx, ADDR, 9000)
        tx = kernel.net.socket_create(left, 2, 2, 17)
        kernel.net.sendto(left, tx, 4, ADDR, 9000)
        assert kernel.net.recvfrom(right, rx, 100) == "xxxx"

    def _direct_pair(self, kernel):
        left = kernel.spawn_task()
        right = kernel.spawn_task()
        kernel.unshare(left, CLONE_NEWNET)
        kernel.unshare(right, CLONE_NEWNET)
        wire(kernel, left, right)
        return left, right
