"""Unit tests for namespaces, tasks, PID hierarchy, and priorities."""

import pytest

from repro.kernel import Kernel, fixed_kernel, known_bug_kernel
from repro.kernel.errno import ESRCH, SyscallError
from repro.kernel.namespaces import (
    ALL_NAMESPACE_FLAGS,
    CLONE_NEWNET,
    CLONE_NEWPID,
    CLONE_NEWUTS,
    ISOLATED_RESOURCE,
    NamespaceType,
    NsProxy,
    flags_to_types,
)
from repro.kernel.task import PRIO_PROCESS, PRIO_USER, PidNamespace


class TestFlags:
    def test_each_type_has_a_flag(self):
        assert set(flags_to_types(ALL_NAMESPACE_FLAGS)) == set(NamespaceType)

    def test_single_flag_decodes(self):
        assert flags_to_types(CLONE_NEWNET) == [NamespaceType.NET]

    def test_zero_decodes_empty(self):
        assert flags_to_types(0) == []

    def test_table1_covers_all_eight_types(self):
        # Paper Table 1: eight namespace types, each isolating a resource.
        assert len(ISOLATED_RESOURCE) == 8
        assert ISOLATED_RESOURCE[NamespaceType.NET] == "Network stack"


class TestNsProxy:
    def test_requires_all_types(self, kernel_fixed):
        proxy = kernel_fixed.init_nsproxy
        with pytest.raises(ValueError):
            NsProxy({NamespaceType.NET: proxy.get(NamespaceType.NET)})

    def test_copy_with_replaces_only_given(self, kernel_fixed):
        kernel = kernel_fixed
        task = kernel.spawn_task()
        before = task.nsproxy
        kernel.unshare(task, CLONE_NEWUTS)
        after = task.nsproxy
        assert not after.shares_with(before, NamespaceType.UTS)
        assert after.shares_with(before, NamespaceType.NET)
        assert after.types_differing_from(before) == [NamespaceType.UTS]


class TestUnshare:
    def test_unshare_zero_flags_is_einval(self, kernel_fixed):
        task = kernel_fixed.spawn_task()
        with pytest.raises(SyscallError):
            kernel_fixed.unshare(task, 0)

    def test_unshare_all_creates_fresh_instances(self, kernel_fixed):
        task = kernel_fixed.spawn_task()
        kernel_fixed.unshare(task, ALL_NAMESPACE_FLAGS)
        for ns_type in NamespaceType:
            assert not task.nsproxy.shares_with(kernel_fixed.init_nsproxy, ns_type)

    def test_new_netns_gets_loopback(self, kernel_fixed):
        task = kernel_fixed.spawn_task()
        kernel_fixed.unshare(task, CLONE_NEWNET)
        net_ns = task.nsproxy.get(NamespaceType.NET)
        assert net_ns.devices.lookup("lo") is not None

    def test_namespace_inums_are_unique(self, kernel_fixed):
        task_a = kernel_fixed.spawn_task()
        task_b = kernel_fixed.spawn_task()
        kernel_fixed.unshare(task_a, CLONE_NEWNET)
        kernel_fixed.unshare(task_b, CLONE_NEWNET)
        inum_a = task_a.nsproxy.get(NamespaceType.NET).inum
        inum_b = task_b.nsproxy.get(NamespaceType.NET).inum
        assert inum_a != inum_b

    def test_registry_tracks_instances(self, kernel_fixed):
        before = len(list(kernel_fixed.namespaces.live(NamespaceType.NET)))
        task = kernel_fixed.spawn_task()
        kernel_fixed.unshare(task, CLONE_NEWNET)
        after = len(list(kernel_fixed.namespaces.live(NamespaceType.NET)))
        assert after == before + 1


class TestPidNamespaces:
    def test_init_task_is_pid_1(self, kernel_fixed):
        assert kernel_fixed.init_task.pid == 1

    def test_pids_sequential_within_namespace(self, kernel_fixed):
        task_a = kernel_fixed.spawn_task()
        task_b = kernel_fixed.spawn_task()
        assert task_b.pid == task_a.pid + 1

    def test_child_namespace_restarts_numbering(self, kernel_fixed):
        task = kernel_fixed.spawn_task()
        kernel_fixed.unshare(task, CLONE_NEWPID)
        assert task.pid == 1  # first pid in the fresh namespace

    def test_task_visible_in_ancestor_namespaces(self, kernel_fixed):
        task = kernel_fixed.spawn_task()
        init_pid = task.pid
        kernel_fixed.unshare(task, CLONE_NEWPID)
        init_ns = kernel_fixed.init_task.pid_ns
        assert task.vpid_in(init_ns) == init_pid

    def test_task_invisible_in_sibling_namespace(self, kernel_fixed):
        task_a = kernel_fixed.spawn_task()
        task_b = kernel_fixed.spawn_task()
        kernel_fixed.unshare(task_a, CLONE_NEWPID)
        kernel_fixed.unshare(task_b, CLONE_NEWPID)
        assert task_a.vpid_in(task_b.pid_ns) is None

    def test_ancestry_levels(self, kernel_fixed):
        task = kernel_fixed.spawn_task()
        kernel_fixed.unshare(task, CLONE_NEWPID)
        chain = task.pid_ns.ancestry()
        assert len(chain) == 2
        assert chain[0].peek("level") == 1
        assert chain[1].peek("level") == 0

    def test_find_in_ns(self, kernel_fixed):
        task = kernel_fixed.spawn_task()
        found = kernel_fixed.tasks.find_in_ns(task.pid_ns, task.pid)
        assert found is task

    def test_detach_removes_from_all_levels(self, kernel_fixed):
        task = kernel_fixed.spawn_task()
        kernel_fixed.unshare(task, CLONE_NEWPID)
        kernel_fixed.tasks.detach(task)
        assert kernel_fixed.tasks.find_in_ns(kernel_fixed.init_task.pid_ns,
                                             task.pid_numbers[kernel_fixed.init_task.pid_ns]) is None
        assert task.exited


class TestPriorities:
    def _kernel_pair(self, bugs):
        kernel = Kernel(bugs=bugs)
        sender = kernel.spawn_task(comm="sender")
        receiver = kernel.spawn_task(comm="receiver")
        kernel.unshare(sender, CLONE_NEWPID)
        kernel.unshare(receiver, CLONE_NEWPID)
        return kernel, sender, receiver

    def test_setpriority_own_process(self, kernel_fixed):
        task = kernel_fixed.spawn_task()
        kernel_fixed.sched.sys_setpriority(task, PRIO_PROCESS, 0, 5)
        assert kernel_fixed.sched.sys_getpriority(task, PRIO_PROCESS, 0) == 15

    def test_getpriority_returns_20_minus_nice(self, kernel_fixed):
        task = kernel_fixed.spawn_task()
        assert kernel_fixed.sched.sys_getpriority(task, PRIO_PROCESS, 0) == 20

    def test_setpriority_clamps_to_range(self, kernel_fixed):
        task = kernel_fixed.spawn_task()
        kernel_fixed.sched.sys_setpriority(task, PRIO_PROCESS, 0, 99)
        assert kernel_fixed.sched.sys_getpriority(task, PRIO_PROCESS, 0) == 1

    def test_unknown_pid_is_esrch(self, kernel_fixed):
        task = kernel_fixed.spawn_task()
        with pytest.raises(SyscallError) as info:
            kernel_fixed.sched.sys_getpriority(task, PRIO_PROCESS, 9999)
        assert info.value.errno == ESRCH

    def test_bug_a_prio_user_crosses_pid_namespaces(self):
        kernel, sender, receiver = self._kernel_pair(known_bug_kernel("A"))
        kernel.sched.sys_setpriority(sender, PRIO_USER, 0, 10)
        assert kernel.sched.sys_getpriority(receiver, PRIO_PROCESS, 0) == 10

    def test_fixed_kernel_prio_user_stays_in_namespace(self):
        kernel, sender, receiver = self._kernel_pair(fixed_kernel())
        kernel.sched.sys_setpriority(sender, PRIO_USER, 0, 10)
        assert kernel.sched.sys_getpriority(receiver, PRIO_PROCESS, 0) == 20

    def test_prio_user_respects_uid(self):
        kernel = Kernel(bugs=known_bug_kernel("A"))
        sender = kernel.spawn_task(uid=1000)
        other = kernel.spawn_task(uid=2000)
        kernel.sched.sys_setpriority(sender, PRIO_USER, 0, 10)
        assert kernel.sched.sys_getpriority(other, PRIO_PROCESS, 0) == 20
