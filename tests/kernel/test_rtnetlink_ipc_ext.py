"""Tests for rtnetlink request/response and the extended IPC operations."""

import pytest

from repro.corpus.program import prog
from repro.kernel import Kernel, fixed_kernel, known_bug_kernel
from repro.kernel.errno import (
    EAGAIN,
    EINVAL,
    ENODEV,
    EOPNOTSUPP,
    EPERM,
    ERANGE,
    SyscallError,
)
from repro.kernel.ipc import IPC_CREAT, IPC_PRIVATE, IPC_STAT
from repro.kernel.namespaces import CLONE_NEWNET, NamespaceType
from repro.kernel.net.rtnetlink import RTM_DELLINK, RTM_GETLINK, RTM_NEWLINK
from repro.kernel.net.socket import AF_NETLINK, NETLINK_ROUTE, SOCK_RAW
from repro.vm.executor import Executor


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def task(kernel):
    return kernel.spawn_task()


def route_socket(kernel, task):
    return kernel.net.socket_create(task, AF_NETLINK, SOCK_RAW, NETLINK_ROUTE)


class TestRtnetlink:
    def test_getlink_dumps_namespace_devices(self, kernel, task):
        sock = route_socket(kernel, task)
        queued = kernel.rtnetlink.request(task, sock, RTM_GETLINK, "")
        assert queued == 2  # loopback + NLMSG_DONE
        assert "name=lo" in kernel.net.recvfrom(task, sock, 512)
        assert kernel.net.recvfrom(task, sock, 512) == "NLMSG_DONE"

    def test_newlink_creates_device_and_acks(self, kernel, task):
        sock = route_socket(kernel, task)
        kernel.rtnetlink.request(task, sock, RTM_NEWLINK, "veth0")
        reply = kernel.net.recvfrom(task, sock, 512)
        assert reply.startswith("RTM_NEWLINK")
        ns = task.nsproxy.get(NamespaceType.NET)
        assert ns.devices.lookup("veth0") is not None

    def test_dellink_removes_and_emits_remove_uevent(self, kernel, task):
        sock = route_socket(kernel, task)
        kernel.rtnetlink.request(task, sock, RTM_NEWLINK, "veth0")
        kernel.rtnetlink.request(task, sock, RTM_DELLINK, "veth0")
        ns = task.nsproxy.get(NamespaceType.NET)
        assert ns.devices.lookup("veth0") is None
        assert "remove@/devices/virtual/net/veth0" in \
            ns.uevent_queue.peek_items()

    def test_dellink_loopback_rejected(self, kernel, task):
        sock = route_socket(kernel, task)
        with pytest.raises(SyscallError) as info:
            kernel.rtnetlink.request(task, sock, RTM_DELLINK, "lo")
        assert info.value.errno == EINVAL

    def test_dellink_missing_is_enodev(self, kernel, task):
        sock = route_socket(kernel, task)
        with pytest.raises(SyscallError) as info:
            kernel.rtnetlink.request(task, sock, RTM_DELLINK, "ghost")
        assert info.value.errno == ENODEV

    def test_dellink_requires_cap(self, kernel):
        user = kernel.spawn_task(uid=1000)
        sock = route_socket(kernel, user)
        with pytest.raises(SyscallError) as info:
            kernel.rtnetlink.request(user, sock, RTM_DELLINK, "veth0")
        assert info.value.errno == EPERM

    def test_unknown_message_is_eopnotsupp(self, kernel, task):
        sock = route_socket(kernel, task)
        with pytest.raises(SyscallError) as info:
            kernel.rtnetlink.request(task, sock, 99, "")
        assert info.value.errno == EOPNOTSUPP

    def test_dump_is_per_namespace(self, kernel):
        owner = kernel.spawn_task()
        reader = kernel.spawn_task()
        kernel.unshare(owner, CLONE_NEWNET)
        kernel.unshare(reader, CLONE_NEWNET)
        owner_sock = route_socket(kernel, owner)
        kernel.rtnetlink.request(owner, owner_sock, RTM_NEWLINK, "veth0")
        reader_sock = route_socket(kernel, reader)
        kernel.rtnetlink.request(reader, reader_sock, RTM_GETLINK, "")
        replies = []
        while True:
            try:
                replies.append(kernel.net.recvfrom(reader, reader_sock, 512))
            except SyscallError:
                break
        assert not any("veth0" in reply for reply in replies)

    def test_syscall_surface(self, kernel, task):
        result = Executor(kernel, task).run(prog(
            ("socket", AF_NETLINK, SOCK_RAW, NETLINK_ROUTE),
            ("nl_request", "r0", RTM_GETLINK, ""),
            ("recvfrom", "r0", 512),
        ))
        assert result.records[0].ret_kind == "sock_netlink_route"
        assert "name=lo" in result.records[2].details["data"]

    def test_nl_request_on_wrong_socket_is_einval(self, kernel, task):
        result = Executor(kernel, task).run(prog(
            ("socket", 2, 1, 6),
            ("nl_request", "r0", RTM_GETLINK, ""),
        ))
        assert result.records[1].errno == EINVAL


class TestSemop:
    def test_increment_and_decrement(self, kernel, task):
        semid = kernel.ipc.semget(task, IPC_PRIVATE, 2, IPC_CREAT)
        kernel.ipc.semop(task, semid, 0, 2)
        kernel.ipc.semop(task, semid, 0, -1)
        ns = task.nsproxy.get(NamespaceType.IPC)
        assert ns.sem_sets.lookup(semid).values[0] == 1

    def test_would_block_is_eagain(self, kernel, task):
        semid = kernel.ipc.semget(task, IPC_PRIVATE, 1, IPC_CREAT)
        with pytest.raises(SyscallError) as info:
            kernel.ipc.semop(task, semid, 0, -1)
        assert info.value.errno == EAGAIN

    def test_bad_semnum_is_erange(self, kernel, task):
        semid = kernel.ipc.semget(task, IPC_PRIVATE, 1, IPC_CREAT)
        with pytest.raises(SyscallError) as info:
            kernel.ipc.semop(task, semid, 5, 1)
        assert info.value.errno == ERANGE

    def test_bad_semid_is_einval(self, kernel, task):
        with pytest.raises(SyscallError):
            kernel.ipc.semop(task, 999, 0, 1)


class TestShmAttach:
    def test_attach_detach_counts(self, kernel, task):
        shmid = kernel.ipc.shmget(task, IPC_PRIVATE, 4096, IPC_CREAT)
        kernel.ipc.shmat(task, shmid)
        kernel.ipc.shmat(task, shmid)
        stat = kernel.ipc.shmctl(task, shmid, IPC_STAT)
        assert stat["shm_nattch"] == 2
        kernel.ipc.shmdt(task, shmid)
        stat = kernel.ipc.shmctl(task, shmid, IPC_STAT)
        assert stat["shm_nattch"] == 1

    def test_detach_unattached_is_einval(self, kernel, task):
        shmid = kernel.ipc.shmget(task, IPC_PRIVATE, 4096, IPC_CREAT)
        with pytest.raises(SyscallError):
            kernel.ipc.shmdt(task, shmid)
