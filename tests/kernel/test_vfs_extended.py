"""Tests for the extended VFS surface: rename, rmdir, symlinks, statfs,
and /proc/mounts."""

import pytest

from repro.corpus.program import prog
from repro.kernel import Kernel
from repro.kernel.errno import (
    EBUSY,
    EEXIST,
    EINVAL,
    EISDIR,
    ENOENT,
    ENOTDIR,
    ENOTEMPTY,
    EROFS,
    EXDEV,
    SyscallError,
)
from repro.kernel.namespaces import CLONE_NEWNS
from repro.kernel.vfs import O_CREAT
from repro.vm.executor import Executor


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def task(kernel):
    return kernel.spawn_task()


class TestRename:
    def test_rename_moves_content(self, kernel, task):
        handle = kernel.vfs.open(task, "/tmp/a", O_CREAT)
        kernel.vfs.write_file(task, handle, "data", 0)
        kernel.vfs.rename(task, "/tmp/a", "/tmp/b")
        __, inode, ___ = kernel.vfs.lookup(task, "/tmp/b")
        assert inode.content == "data"
        with pytest.raises(SyscallError):
            kernel.vfs.lookup(task, "/tmp/a")

    def test_rename_over_existing_file_replaces(self, kernel, task):
        kernel.vfs.open(task, "/tmp/a", O_CREAT)
        kernel.vfs.open(task, "/tmp/b", O_CREAT)
        assert kernel.vfs.rename(task, "/tmp/a", "/tmp/b") == 0

    def test_rename_onto_directory_is_eisdir(self, kernel, task):
        kernel.vfs.open(task, "/tmp/a", O_CREAT)
        kernel.vfs.mkdir(task, "/tmp/d")
        with pytest.raises(SyscallError) as info:
            kernel.vfs.rename(task, "/tmp/a", "/tmp/d")
        assert info.value.errno == EISDIR

    def test_rename_missing_source_is_enoent(self, kernel, task):
        with pytest.raises(SyscallError) as info:
            kernel.vfs.rename(task, "/tmp/missing", "/tmp/b")
        assert info.value.errno == ENOENT

    def test_rename_across_mounts_is_exdev(self, kernel, task):
        kernel.vfs.open(task, "/tmp/a", O_CREAT)
        with pytest.raises(SyscallError) as info:
            kernel.vfs.rename(task, "/tmp/a", "/etc/a")
        assert info.value.errno == EXDEV

    def test_rename_in_proc_is_erofs(self, kernel, task):
        with pytest.raises(SyscallError) as info:
            kernel.vfs.rename(task, "/proc/uptime", "/proc/x")
        assert info.value.errno == EROFS


class TestRmdir:
    def test_rmdir_empty_directory(self, kernel, task):
        kernel.vfs.mkdir(task, "/tmp/d")
        kernel.vfs.rmdir(task, "/tmp/d")
        with pytest.raises(SyscallError):
            kernel.vfs.lookup(task, "/tmp/d")

    def test_rmdir_nonempty_is_enotempty(self, kernel, task):
        kernel.vfs.mkdir(task, "/tmp/d")
        kernel.vfs.open(task, "/tmp/d/f", O_CREAT)
        with pytest.raises(SyscallError) as info:
            kernel.vfs.rmdir(task, "/tmp/d")
        assert info.value.errno == ENOTEMPTY

    def test_rmdir_file_is_enotdir(self, kernel, task):
        kernel.vfs.open(task, "/tmp/f", O_CREAT)
        with pytest.raises(SyscallError) as info:
            kernel.vfs.rmdir(task, "/tmp/f")
        assert info.value.errno == ENOTDIR

    def test_rmdir_mount_root_is_ebusy(self, kernel, task):
        with pytest.raises(SyscallError) as info:
            kernel.vfs.rmdir(task, "/tmp")
        assert info.value.errno == EBUSY


class TestSymlinks:
    def test_symlink_and_readlink(self, kernel, task):
        kernel.vfs.symlink(task, "/tmp/target", "/tmp/link")
        assert kernel.vfs.readlink(task, "/tmp/link") == "/tmp/target"

    def test_symlink_over_existing_is_eexist(self, kernel, task):
        kernel.vfs.open(task, "/tmp/x", O_CREAT)
        with pytest.raises(SyscallError) as info:
            kernel.vfs.symlink(task, "/anything", "/tmp/x")
        assert info.value.errno == EEXIST

    def test_readlink_on_regular_file_is_einval(self, kernel, task):
        kernel.vfs.open(task, "/tmp/f", O_CREAT)
        with pytest.raises(SyscallError) as info:
            kernel.vfs.readlink(task, "/tmp/f")
        assert info.value.errno == EINVAL

    def test_symlink_size_is_target_length(self, kernel, task):
        kernel.vfs.symlink(task, "/abc", "/tmp/link")
        __, inode, ___ = kernel.vfs.lookup(task, "/tmp/link")
        assert inode.peek("size") == 4

    def test_syscall_surface(self, kernel, task):
        result = Executor(kernel, task).run(prog(
            ("symlink", "/tmp/f0", "/tmp/l0"),
            ("readlink", "/tmp/l0"),
        ))
        assert result.records[1].details["target"] == "/tmp/f0"


class TestStatfs:
    def test_tmpfs_magic(self, kernel, task):
        stat = kernel.vfs.statfs(task, "/tmp")
        assert stat["f_type"] == 0x01021994

    def test_proc_magic(self, kernel, task):
        stat = kernel.vfs.statfs(task, "/proc/uptime")
        assert stat["f_type"] == 0x9FA0

    def test_dev_matches_superblock(self, kernel, task):
        mount, __ = kernel.vfs.resolve(task, "/tmp")
        assert kernel.vfs.statfs(task, "/tmp")["f_dev"] == \
            mount.sb.peek("s_dev")


class TestProcMounts:
    def test_lists_standard_tree(self, kernel, task):
        content = kernel.procfs.render(task, "mounts")
        assert "none / tmpfs" in content
        assert "none /proc proc" in content
        assert "none /tmp tmpfs" in content

    def test_reflects_own_namespace_only(self, kernel):
        task = kernel.spawn_task()
        kernel.unshare(task, CLONE_NEWNS)
        kernel.vfs.mkdir(task, "/tmp/m")
        kernel.vfs.mount(task, "none", "/tmp/m", "ramfs")
        own = kernel.procfs.render(task, "mounts")
        host = kernel.procfs.render(kernel.init_task, "mounts")
        assert "/tmp/m ramfs" in own
        assert "/tmp/m ramfs" not in host

    def test_umount_disappears(self, kernel):
        task = kernel.spawn_task()
        kernel.unshare(task, CLONE_NEWNS)
        kernel.vfs.umount(task, "/tmp")
        assert "none /tmp tmpfs" not in kernel.procfs.render(task, "mounts")
