"""Unit tests for the execution tracer and instrumentation."""

import pytest

from repro.kernel.ktrace import (
    FUNCTIONS,
    FuncEnter,
    FuncExit,
    FunctionRegistry,
    InstructionRegistry,
    KernelTracer,
    MemAccess,
    kfunc,
    walk_with_stack,
)


class Subsystem:
    """Instrumented test double: outer() calls inner()."""

    def __init__(self, tracer):
        self.tracer = tracer

    @kfunc
    def outer(self):
        self._emit(1)
        return self.inner()

    @kfunc
    def inner(self):
        self._emit(2)
        return "done"

    @kfunc(instrument=False)
    def not_instrumented(self):
        self._emit(3)
        return "quiet"

    def _emit(self, addr):
        if self.tracer is not None:
            self.tracer.on_access(addr, 8, False, ip=addr)


class TestFunctionRegistry:
    def test_ids_are_stable(self):
        registry = FunctionRegistry()
        assert registry.register("f") == registry.register("f")

    def test_ids_are_dense(self):
        registry = FunctionRegistry()
        assert registry.register("a") == 0
        assert registry.register("b") == 1

    def test_name_roundtrip(self):
        registry = FunctionRegistry()
        fid = registry.register("my_func")
        assert registry.name_of(fid) == "my_func"
        assert registry.id_of("my_func") == fid


class TestInstructionRegistry:
    def test_same_location_same_address(self):
        registry = InstructionRegistry()
        assert registry.address_for("f.py", 10) == registry.address_for("f.py", 10)

    def test_different_locations_differ(self):
        registry = InstructionRegistry()
        assert registry.address_for("f.py", 10) != registry.address_for("f.py", 11)

    def test_location_roundtrip(self):
        registry = InstructionRegistry()
        ip = registry.address_for("g.py", 3)
        assert registry.location_of(ip) == ("g.py", 3)

    def test_addresses_look_like_kernel_text(self):
        registry = InstructionRegistry()
        assert registry.address_for("f.py", 1) >= 0xFFFFFFFF81000000


class TestKfunc:
    def test_enter_exit_bracket_the_call(self):
        tracer = KernelTracer()
        tracer.start()
        subsystem = Subsystem(tracer)
        subsystem.outer()
        kinds = [type(e).__name__ for e in tracer.entries]
        assert kinds == ["FuncEnter", "MemAccess", "FuncEnter", "MemAccess",
                         "FuncExit", "FuncExit"]

    def test_function_ids_registered_at_decoration(self):
        assert Subsystem.outer.kit_func_id is not None
        assert FUNCTIONS.name_of(Subsystem.outer.kit_func_id) == "Subsystem.outer"

    def test_uninstrumented_functions_emit_no_brackets(self):
        tracer = KernelTracer()
        tracer.start()
        subsystem = Subsystem(tracer)
        subsystem.not_instrumented()
        kinds = [type(e).__name__ for e in tracer.entries]
        assert kinds == ["MemAccess"]
        assert Subsystem.not_instrumented.kit_func_id is None

    def test_no_overhead_when_tracer_disabled(self):
        tracer = KernelTracer()
        subsystem = Subsystem(tracer)
        assert subsystem.outer() == "done"
        assert tracer.entries == []

    def test_works_without_tracer(self):
        subsystem = Subsystem(None)
        # _emit guards on None; kfunc must tolerate tracer=None too.
        assert subsystem.inner() == "done"


class TestInterruptContext:
    def test_accesses_in_interrupt_context_skipped(self):
        tracer = KernelTracer()
        tracer.start()
        with tracer.interrupt_context():
            tracer.on_access(1, 8, True, ip=1)
        tracer.on_access(2, 8, True, ip=2)
        assert len(tracer.entries) == 1
        assert tracer.entries[0].addr == 2

    def test_interrupt_context_nests(self):
        tracer = KernelTracer()
        tracer.start()
        with tracer.interrupt_context():
            with tracer.interrupt_context():
                pass
            assert not tracer.in_task
        assert tracer.in_task

    def test_function_brackets_skipped_in_interrupt(self):
        tracer = KernelTracer()
        tracer.start()
        with tracer.interrupt_context():
            tracer.on_func_enter(0)
            tracer.on_func_exit(0)
        assert tracer.entries == []


class TestWalkWithStack:
    def test_stack_recovery(self):
        tracer = KernelTracer()
        tracer.start()
        subsystem = Subsystem(tracer)
        subsystem.outer()
        pairs = list(walk_with_stack(tracer.entries))
        assert len(pairs) == 2
        outer_id = Subsystem.outer.kit_func_id
        inner_id = Subsystem.inner.kit_func_id
        assert pairs[0][1] == (outer_id,)
        assert pairs[1][1] == (outer_id, inner_id)

    def test_empty_trace(self):
        assert list(walk_with_stack([])) == []

    def test_access_outside_any_function(self):
        entries = [MemAccess(1, 8, False, 0)]
        ((access, stack),) = walk_with_stack(entries)
        assert stack == ()

    def test_unbalanced_exit_is_tolerated(self):
        entries = [FuncExit(5), MemAccess(1, 8, False, 0)]
        ((__, stack),) = walk_with_stack(entries)
        assert stack == ()


class TestTracerLifecycle:
    def test_drain_clears_buffer(self):
        tracer = KernelTracer()
        tracer.start()
        tracer.on_access(1, 8, False, 0)
        assert len(tracer.drain()) == 1
        assert tracer.entries == []

    def test_disabled_records_nothing(self):
        tracer = KernelTracer()
        tracer.on_access(1, 8, False, 0)
        assert tracer.entries == []

    def test_current_stack_tracks_enters(self):
        tracer = KernelTracer()
        tracer.start()
        tracer.on_func_enter(3)
        assert tracer.current_stack == (3,)
        tracer.on_func_exit(3)
        assert tracer.current_stack == ()
