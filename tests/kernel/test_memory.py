"""Unit tests for the traced kernel memory arena."""

import pickle

import pytest

from repro.kernel.ktrace import KernelTracer, MemAccess
from repro.kernel.memory import KCell, KDict, KernelArena, KList, KStruct


class Sample(KStruct):
    FIELDS = {"a": 4, "b": 8, "c": 2}


class Untraced(KStruct):
    FIELDS = {"x": 8}
    TRACED = False


@pytest.fixture
def arena():
    return KernelArena()


@pytest.fixture
def traced_arena():
    arena = KernelArena()
    tracer = KernelTracer()
    tracer.start()
    arena.tracer = tracer
    return arena, tracer


class TestArena:
    def test_allocations_do_not_overlap(self, arena):
        first = arena.alloc(40)
        second = arena.alloc(8)
        assert second >= first + 40

    def test_allocation_alignment(self, arena):
        addr = arena.alloc(1)
        assert addr % 64 == 0

    def test_zero_size_allocation_still_unique(self, arena):
        assert arena.alloc(0) != arena.alloc(0)

    def test_pickle_drops_tracer(self, traced_arena):
        arena, tracer = traced_arena
        clone = pickle.loads(pickle.dumps(arena))
        assert clone.tracer is None

    def test_pickle_preserves_cursor(self, arena):
        arena.alloc(128)
        clone = pickle.loads(pickle.dumps(arena))
        assert clone.alloc(8) == arena.alloc(8)


class TestKStruct:
    def test_field_offsets_are_aligned(self, arena):
        sample = Sample(arena)
        base = sample.base_address
        assert sample.field_address("a") == base
        assert sample.field_address("b") == base + 8  # aligned up from 4
        assert sample.field_address("c") == base + 16

    def test_kget_returns_initial_value(self, arena):
        sample = Sample(arena, a=42)
        assert sample.kget("a") == 42

    def test_kset_updates_value(self, arena):
        sample = Sample(arena)
        sample.kset("b", 7)
        assert sample.kget("b") == 7

    def test_unknown_initial_field_rejected(self, arena):
        with pytest.raises(KeyError):
            Sample(arena, nope=1)

    def test_kget_records_read(self, traced_arena):
        arena, tracer = traced_arena
        sample = Sample(arena)
        sample.kget("a")
        (access,) = [e for e in tracer.entries if isinstance(e, MemAccess)]
        assert not access.is_write
        assert access.addr == sample.field_address("a")
        assert access.width == 4

    def test_kset_records_write(self, traced_arena):
        arena, tracer = traced_arena
        sample = Sample(arena)
        sample.kset("c", 1)
        (access,) = [e for e in tracer.entries if isinstance(e, MemAccess)]
        assert access.is_write
        assert access.width == 2

    def test_peek_poke_are_untraced(self, traced_arena):
        arena, tracer = traced_arena
        sample = Sample(arena)
        sample.poke("a", 5)
        assert sample.peek("a") == 5
        assert not tracer.entries

    def test_untraced_struct_records_nothing(self, traced_arena):
        arena, tracer = traced_arena
        untraced = Untraced(arena)
        untraced.kset("x", 1)
        untraced.kget("x")
        assert not tracer.entries

    def test_instances_have_distinct_addresses(self, arena):
        assert Sample(arena).base_address != Sample(arena).base_address

    def test_instruction_addresses_differ_by_site(self, traced_arena):
        arena, tracer = traced_arena
        sample = Sample(arena)
        sample.kget("a")  # site 1
        sample.kget("a")  # site 2
        first, second = [e for e in tracer.entries if isinstance(e, MemAccess)]
        assert first.addr == second.addr
        assert first.ip != second.ip

    def test_same_site_has_stable_instruction_address(self, traced_arena):
        arena, tracer = traced_arena
        sample = Sample(arena)
        for __ in range(2):
            sample.kget("a")
        first, second = [e for e in tracer.entries if isinstance(e, MemAccess)]
        assert first.ip == second.ip


class TestKCell:
    def test_get_set_roundtrip(self, arena):
        cell = KCell(arena, 4, init=3)
        assert cell.get() == 3
        cell.set(9)
        assert cell.get() == 9

    def test_add_is_read_modify_write(self, traced_arena):
        arena, tracer = traced_arena
        cell = KCell(arena)
        cell.add(5)
        accesses = [e for e in tracer.entries if isinstance(e, MemAccess)]
        assert [a.is_write for a in accesses] == [False, True]
        assert cell.peek() == 5

    def test_depth_credits_callers_site(self, traced_arena):
        arena, tracer = traced_arena
        cell = KCell(arena)

        def helper():
            return cell.get(depth=3)

        def outer_site_one():
            return helper()

        def outer_site_two():
            return helper()

        outer_site_one()
        outer_site_two()
        first, second = [e for e in tracer.entries if isinstance(e, MemAccess)]
        assert first.ip != second.ip

    def test_pickle_roundtrip(self, arena):
        cell = KCell(arena, 8, init=11)
        clone = pickle.loads(pickle.dumps(cell))
        assert clone.peek() == 11
        assert clone.address == cell.address


class TestKList:
    def test_append_and_iterate(self, arena):
        klist = KList(arena)
        klist.append("x")
        klist.append("y")
        assert list(klist) == ["x", "y"]

    def test_append_writes_header(self, traced_arena):
        arena, tracer = traced_arena
        klist = KList(arena)
        klist.append(1)
        (access,) = [e for e in tracer.entries if isinstance(e, MemAccess)]
        assert access.is_write and access.addr == klist.address

    def test_iteration_reads_header(self, traced_arena):
        arena, tracer = traced_arena
        klist = KList(arena)
        for __ in klist:
            pass
        (access,) = [e for e in tracer.entries if isinstance(e, MemAccess)]
        assert not access.is_write

    def test_remove(self, arena):
        klist = KList(arena)
        klist.append("a")
        klist.remove("a")
        assert klist.peek_items() == []

    def test_pop_front_is_fifo_and_writes(self, traced_arena):
        arena, tracer = traced_arena
        klist = KList(arena)
        klist.append(1)
        klist.append(2)
        tracer.reset()
        assert klist.pop_front() == 1
        (access,) = [e for e in tracer.entries if isinstance(e, MemAccess)]
        assert access.is_write

    def test_len_is_traced_read(self, traced_arena):
        arena, tracer = traced_arena
        klist = KList(arena)
        assert len(klist) == 0
        (access,) = [e for e in tracer.entries if isinstance(e, MemAccess)]
        assert not access.is_write


class TestKDict:
    def test_insert_lookup_delete(self, arena):
        kdict = KDict(arena)
        kdict.insert("k", 1)
        assert kdict.lookup("k") == 1
        kdict.delete("k")
        assert kdict.lookup("k") is None

    def test_lookup_default(self, arena):
        kdict = KDict(arena)
        assert kdict.lookup("missing", default=-1) == -1

    def test_contains_and_len(self, arena):
        kdict = KDict(arena)
        kdict.insert(1, "a")
        assert 1 in kdict
        assert len(kdict) == 1

    def test_mutation_writes_lookup_reads(self, traced_arena):
        arena, tracer = traced_arena
        kdict = KDict(arena)
        kdict.insert("k", 1)
        kdict.lookup("k")
        accesses = [e for e in tracer.entries if isinstance(e, MemAccess)]
        assert [a.is_write for a in accesses] == [True, False]
        assert all(a.addr == kdict.address for a in accesses)

    def test_values_and_iteration(self, arena):
        kdict = KDict(arena)
        kdict.insert("a", 1)
        kdict.insert("b", 2)
        assert sorted(kdict.values()) == [1, 2]
        assert sorted(kdict) == ["a", "b"]
