"""Tests for cgroup namespace virtualization and time-namespace offsets."""

import pytest

from repro.corpus.program import prog
from repro.kernel import Kernel
from repro.kernel.errno import EEXIST, EINVAL, ENOENT, SyscallError
from repro.kernel.namespaces import (
    CLONE_NEWCGROUP,
    CLONE_NEWTIME,
    NamespaceType,
)
from repro.vm.executor import Executor


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def task(kernel):
    return kernel.spawn_task()


class TestCgroupHierarchy:
    def test_create_and_enter(self, kernel, task):
        kernel.cgroup.create(task, "/app")
        kernel.cgroup.enter(task, "/app")
        assert task.cgroup_path == "/app"

    def test_create_requires_parent(self, kernel, task):
        with pytest.raises(SyscallError) as info:
            kernel.cgroup.create(task, "/missing/web")
        assert info.value.errno == ENOENT

    def test_create_duplicate_is_eexist(self, kernel, task):
        kernel.cgroup.create(task, "/app")
        with pytest.raises(SyscallError) as info:
            kernel.cgroup.create(task, "/app")
        assert info.value.errno == EEXIST

    def test_enter_missing_is_enoent(self, kernel, task):
        with pytest.raises(SyscallError):
            kernel.cgroup.enter(task, "/nope")

    def test_task_counts_move(self, kernel, task):
        kernel.cgroup.create(task, "/app")
        kernel.cgroup.enter(task, "/app")
        group = kernel.cgroup.groups.lookup("/app")
        assert group.peek("nr_tasks") == 1
        kernel.cgroup.enter(task, "/")
        assert group.peek("nr_tasks") == 0


class TestCgroupNamespaceView:
    def test_proc_cgroup_default_root(self, kernel, task):
        assert kernel.procfs.render(task, "self/cgroup") == "0::/\n"

    def test_unshare_pins_root_to_current_cgroup(self, kernel, task):
        kernel.cgroup.create(task, "/app")
        kernel.cgroup.enter(task, "/app")
        kernel.unshare(task, CLONE_NEWCGROUP)
        # Inside the new namespace the task appears at the root.
        assert kernel.procfs.render(task, "self/cgroup") == "0::/\n"

    def test_paths_resolve_relative_to_ns_root(self, kernel, task):
        kernel.cgroup.create(task, "/app")
        kernel.cgroup.enter(task, "/app")
        kernel.unshare(task, CLONE_NEWCGROUP)
        kernel.cgroup.create(task, "/web")  # really /app/web globally
        assert kernel.cgroup.groups.lookup("/app/web") is not None
        kernel.cgroup.enter(task, "/web")
        assert kernel.procfs.render(task, "self/cgroup") == "0::/web\n"

    def test_outside_root_shown_as_escape_marker(self, kernel):
        confined = kernel.spawn_task(comm="confined")
        kernel.cgroup.create(confined, "/app")
        kernel.cgroup.enter(confined, "/app")
        kernel.unshare(confined, CLONE_NEWCGROUP)
        # The init task (cgroup "/") is outside the confined root.
        content = kernel.cgroup.render_proc_cgroup(confined, kernel.init_task)
        assert content == "0::/..\n"

    def test_host_sees_global_path(self, kernel, task):
        kernel.cgroup.create(task, "/app")
        kernel.cgroup.enter(task, "/app")
        content = kernel.cgroup.render_proc_cgroup(kernel.init_task, task)
        assert content == "0::/app\n"

    def test_syscall_surface(self, kernel, task):
        result = Executor(kernel, task).run(prog(
            ("cgroup_create", "/app"),
            ("cgroup_enter", "/app"),
            ("open", "/proc/self/cgroup", 0),
            ("read", "r2", 128),
        ))
        assert result.records[3].details["data"] == "0::/app\n"


class TestTimeNamespaceOffsets:
    def test_offsets_default_zero(self, kernel, task):
        content = kernel.procfs.render(task, "self/timens_offsets")
        assert "monotonic 0" in content and "boottime 0" in content

    def test_write_offsets(self, kernel, task):
        kernel.unshare(task, CLONE_NEWTIME)
        kernel.procfs.write(task, "self/timens_offsets",
                            "monotonic 5000000000")
        content = kernel.procfs.render(task, "self/timens_offsets")
        assert "monotonic 5000000000" in content

    def test_offset_shifts_clock_gettime_monotonic(self, kernel, task):
        kernel.unshare(task, CLONE_NEWTIME)
        before = kernel.syscall(task, "clock_gettime", [1]).details["tv_sec"]
        kernel.procfs.write(task, "self/timens_offsets",
                            "monotonic 5000000000")
        after = kernel.syscall(task, "clock_gettime", [1]).details["tv_sec"]
        assert after >= before + 4  # 5 virtual seconds, minus tick noise

    def test_offset_does_not_shift_realtime(self, kernel, task):
        kernel.unshare(task, CLONE_NEWTIME)
        kernel.procfs.write(task, "self/timens_offsets",
                            "monotonic 5000000000")
        realtime = kernel.syscall(task, "clock_gettime", [0]).details["tv_sec"]
        assert realtime < 1_700_000_000  # still the virtual epoch

    def test_offsets_are_per_namespace(self, kernel):
        shifted = kernel.spawn_task()
        kernel.unshare(shifted, CLONE_NEWTIME)
        kernel.procfs.write(shifted, "self/timens_offsets",
                            "monotonic 9000000000")
        content = kernel.procfs.render(kernel.init_task,
                                       "self/timens_offsets")
        assert "monotonic 0" in content

    def test_garbage_write_is_einval(self, kernel, task):
        with pytest.raises(SyscallError) as info:
            kernel.procfs.write(task, "self/timens_offsets", "what")
        assert info.value.errno == EINVAL
