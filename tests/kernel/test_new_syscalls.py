"""Tests for the extended syscall surface: POSIX mqueues, nsfs/setns,
accept/getsockname, dup."""

import pytest

from repro.corpus.program import prog
from repro.kernel import Kernel
from repro.kernel.errno import (
    EAGAIN,
    EEXIST,
    EINVAL,
    ENOMSG,
    ENOSPC,
    SyscallError,
)
from repro.kernel.ipc import IPC_CREAT, IPC_EXCL, MqFile
from repro.kernel.namespaces import (
    ALL_NAMESPACE_FLAGS,
    CLONE_NEWIPC,
    CLONE_NEWNET,
    CLONE_NEWUTS,
    NamespaceType,
)
from repro.kernel.nsfs import NsFile, ns_path_type, open_ns_file
from repro.vm.executor import Executor


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def task(kernel):
    return kernel.spawn_task()


def run(kernel, task, program):
    return Executor(kernel, task).run(program)


class TestPosixMqueues:
    def test_open_create_send_receive(self, kernel, task):
        mq = kernel.ipc.mq_open(task, "/q", IPC_CREAT)
        kernel.ipc.mq_send(task, mq, "hello", 0)
        assert kernel.ipc.mq_receive(task, mq) == "hello"

    def test_priority_ordering(self, kernel, task):
        mq = kernel.ipc.mq_open(task, "/q", IPC_CREAT)
        kernel.ipc.mq_send(task, mq, "low", 0)
        kernel.ipc.mq_send(task, mq, "high", 9)
        assert kernel.ipc.mq_receive(task, mq) == "high"

    def test_open_missing_without_create_fails(self, kernel, task):
        with pytest.raises(SyscallError) as info:
            kernel.ipc.mq_open(task, "/missing", 0)
        assert info.value.errno == ENOMSG

    def test_excl_on_existing_fails(self, kernel, task):
        kernel.ipc.mq_open(task, "/q", IPC_CREAT)
        with pytest.raises(SyscallError) as info:
            kernel.ipc.mq_open(task, "/q", IPC_CREAT | IPC_EXCL)
        assert info.value.errno == EEXIST

    def test_bad_name_rejected(self, kernel, task):
        with pytest.raises(SyscallError) as info:
            kernel.ipc.mq_open(task, "noslash", IPC_CREAT)
        assert info.value.errno == EINVAL

    def test_queue_full_is_enospc(self, kernel, task):
        mq = kernel.ipc.mq_open(task, "/q", IPC_CREAT)
        for i in range(mq.queue.peek("maxmsg")):
            kernel.ipc.mq_send(task, mq, str(i), 0)
        with pytest.raises(SyscallError) as info:
            kernel.ipc.mq_send(task, mq, "overflow", 0)
        assert info.value.errno == ENOSPC

    def test_receive_empty_is_enomsg(self, kernel, task):
        mq = kernel.ipc.mq_open(task, "/q", IPC_CREAT)
        with pytest.raises(SyscallError):
            kernel.ipc.mq_receive(task, mq)

    def test_unlink_removes_name(self, kernel, task):
        kernel.ipc.mq_open(task, "/q", IPC_CREAT)
        kernel.ipc.mq_unlink(task, "/q")
        with pytest.raises(SyscallError):
            kernel.ipc.mq_open(task, "/q", 0)

    def test_names_isolated_per_ipc_namespace(self, kernel):
        first = kernel.spawn_task()
        second = kernel.spawn_task()
        kernel.unshare(first, CLONE_NEWIPC)
        kernel.unshare(second, CLONE_NEWIPC)
        mq = kernel.ipc.mq_open(first, "/shared-name", IPC_CREAT)
        kernel.ipc.mq_send(first, mq, "secret", 0)
        other = kernel.ipc.mq_open(second, "/shared-name", IPC_CREAT)
        with pytest.raises(SyscallError):
            kernel.ipc.mq_receive(second, other)

    def test_mq_syscall_surface(self, kernel, task):
        result = run(kernel, task, prog(
            ("mq_open", "/kitq", IPC_CREAT),
            ("mq_send", "r0", "ping", 1),
            ("mq_receive", "r0"),
            ("mq_unlink", "/kitq"),
        ))
        assert all(record.ok for record in result.live_records())
        assert result.records[2].details["data"] == "ping"
        assert result.records[0].ret_kind == "fd_mqueue"


class TestNsfs:
    def test_path_type_mapping(self):
        assert ns_path_type("/proc/self/ns/net") == NamespaceType.NET
        assert ns_path_type("/proc/self/ns/uts") == NamespaceType.UTS
        with pytest.raises(SyscallError):
            ns_path_type("/proc/self/ns/bogus")

    def test_open_captures_current_instance(self, kernel, task):
        ns_file = open_ns_file(task, "/proc/self/ns/net")
        assert ns_file.namespace is task.nsproxy.get(NamespaceType.NET)
        assert ns_file.resource_kind == "fd_ns"
        assert "net:[" in ns_file.describe()

    def test_save_unshare_restore(self, kernel, task):
        result = run(kernel, task, prog(
            ("open", "/proc/self/ns/net", 0),
            ("unshare", CLONE_NEWNET),
            ("setns", "r0", 0),
        ))
        assert all(record.ok for record in result.live_records())
        assert task.nsproxy.get(NamespaceType.NET) is \
            kernel.init_nsproxy.get(NamespaceType.NET)

    def test_setns_hostname_follows(self, kernel, task):
        result = run(kernel, task, prog(
            ("open", "/proc/self/ns/uts", 0),
            ("unshare", CLONE_NEWUTS),
            ("sethostname", "inner"),
            ("setns", "r0", 0),
            ("gethostname",),
        ))
        assert result.records[4].details["name"] == "kit-vm"

    def test_setns_pid_namespace_rejected(self, kernel, task):
        result = run(kernel, task, prog(
            ("open", "/proc/self/ns/pid", 0),
            ("setns", "r0", 0),
        ))
        assert result.records[1].errno == EINVAL

    def test_setns_on_regular_fd_rejected(self, kernel, task):
        result = run(kernel, task, prog(
            ("open", "/etc/hostname", 0),
            ("setns", "r0", 0),
        ))
        assert result.records[1].errno == EINVAL

    def test_ns_fd_keeps_instance_referenced(self, kernel, task):
        ns_file = open_ns_file(task, "/proc/self/ns/net")
        kernel.unshare(task, CLONE_NEWNET)
        assert ns_file.namespace is not task.nsproxy.get(NamespaceType.NET)


class TestAcceptAndFriends:
    def _listener(self, kernel, task):
        server = kernel.net.socket_create(task, 2, 1, 6)
        kernel.net.bind(task, server, 0x0A000001, 80)
        kernel.net.listen(task, server)
        return server

    def test_accept_returns_connected_socket(self, kernel, task):
        server = self._listener(kernel, task)
        client = kernel.net.socket_create(task, 2, 1, 6)
        kernel.net.connect(task, client, 0x0A000001, 80)
        child = kernel.net.accept(task, server)
        assert child.connected is not None

    def test_accept_empty_queue_is_eagain(self, kernel, task):
        server = self._listener(kernel, task)
        with pytest.raises(SyscallError) as info:
            kernel.net.accept(task, server)
        assert info.value.errno == EAGAIN

    def test_accept_non_listener_is_einval(self, kernel, task):
        sock = kernel.net.socket_create(task, 2, 1, 6)
        with pytest.raises(SyscallError):
            kernel.net.accept(task, sock)

    def test_accept_fifo_order(self, kernel, task):
        server = self._listener(kernel, task)
        for __ in range(2):
            client = kernel.net.socket_create(task, 2, 1, 6)
            kernel.net.connect(task, client, 0x0A000001, 80)
        kernel.net.accept(task, server)
        kernel.net.accept(task, server)
        with pytest.raises(SyscallError):
            kernel.net.accept(task, server)

    def test_getsockname(self, kernel, task):
        result = run(kernel, task, prog(
            ("socket", 2, 1, 6),
            ("bind", "r0", 0x0A000001, 80),
            ("getsockname", "r0"),
        ))
        assert result.records[2].details == {"addr": 0x0A000001, "port": 80}

    def test_getsockname_unbound(self, kernel, task):
        result = run(kernel, task, prog(
            ("socket", 2, 1, 6),
            ("getsockname", "r0"),
        ))
        assert result.records[1].details == {"addr": 0, "port": 0}


class TestDup:
    def test_dup_shares_the_open_file(self, kernel, task):
        result = run(kernel, task, prog(
            ("open", "/etc/hostname", 0),
            ("dup", "r0"),
            ("read", "r0", 3),
            ("read", "r1", 100),
        ))
        # The dup'd fd shares the offset: the second read continues.
        assert result.records[2].details["data"] == "kit"
        assert result.records[3].details["data"] == "-vm\n"

    def test_close_one_dup_keeps_state(self, kernel, task):
        result = run(kernel, task, prog(
            ("socket", 17, 3, 3),        # packet socket (registers ptype)
            ("dup", "r0"),
            ("close", "r0"),
            ("open", "/proc/net/ptype", 0),
            ("pread64", "r3", 4096, 0),
        ))
        # One reference remains: the handler must still be registered.
        assert "packet_rcv" in result.records[4].details["data"]

    def test_closing_last_dup_releases(self, kernel, task):
        result = run(kernel, task, prog(
            ("socket", 17, 3, 3),
            ("dup", "r0"),
            ("close", "r0"),
            ("close", "r1"),
            ("open", "/proc/net/ptype", 0),
            ("pread64", "r4", 4096, 0),
        ))
        assert "packet_rcv" not in result.records[5].details["data"]
