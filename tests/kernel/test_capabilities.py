"""Tests for the capability model on privileged namespace operations."""

import pytest

from repro.kernel import Kernel
from repro.kernel.errno import EACCES, EPERM, SyscallError
from repro.kernel.namespaces import NamespaceType
from repro.kernel.task import CAP_NET_ADMIN, CAP_SYS_ADMIN, CAP_SYS_NICE


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def root_task(kernel):
    return kernel.spawn_task(uid=0)


@pytest.fixture
def user_task(kernel):
    return kernel.spawn_task(uid=1000)


class TestCapable:
    def test_root_holds_everything(self, root_task):
        for cap in (CAP_NET_ADMIN, CAP_SYS_ADMIN, CAP_SYS_NICE):
            assert root_task.capable(cap)

    def test_unprivileged_holds_nothing(self, user_task):
        assert not user_task.capable(CAP_NET_ADMIN)


class TestNetAdminGates:
    def test_netdev_requires_cap(self, kernel, user_task):
        ns = user_task.nsproxy.get(NamespaceType.NET)
        with pytest.raises(SyscallError) as info:
            kernel.netdev.register_netdev(user_task, ns, "veth9")
        assert info.value.errno == EPERM

    def test_netdev_allowed_for_root(self, kernel, root_task):
        ns = root_task.nsproxy.get(NamespaceType.NET)
        assert kernel.netdev.register_netdev(root_task, ns, "veth9") > 0

    def test_ipvs_requires_cap(self, kernel, user_task):
        ns = user_task.nsproxy.get(NamespaceType.NET)
        with pytest.raises(SyscallError) as info:
            kernel.ipvs.add_service(user_task, ns, 1, 80)
        assert info.value.errno == EPERM

    def test_conntrack_write_requires_cap(self, kernel, user_task):
        ns = user_task.nsproxy.get(NamespaceType.NET)
        with pytest.raises(SyscallError) as info:
            kernel.conntrack.sysctl_write_max(user_task, ns, 5)
        assert info.value.errno == EPERM

    def test_conntrack_read_is_unprivileged(self, kernel, user_task):
        ns = user_task.nsproxy.get(NamespaceType.NET)
        assert kernel.conntrack.sysctl_read_max(user_task, ns) == 65536


class TestSysAdminGates:
    def test_mount_requires_cap(self, kernel, user_task):
        with pytest.raises(SyscallError) as info:
            kernel.vfs.mount(user_task, "none", "/tmp", "tmpfs")
        assert info.value.errno == EPERM

    def test_umount_requires_cap(self, kernel, user_task):
        with pytest.raises(SyscallError) as info:
            kernel.vfs.umount(user_task, "/tmp")
        assert info.value.errno == EPERM

    def test_sethostname_requires_cap(self, kernel, user_task):
        with pytest.raises(SyscallError) as info:
            kernel.syscall(user_task, "sethostname", ["x"])
        assert info.value.errno == EPERM

    def test_sethostname_allowed_for_root(self, kernel, root_task):
        assert kernel.syscall(root_task, "sethostname", ["x"]).retval == 0


class TestSysNiceGate:
    def test_negative_nice_requires_cap(self, kernel, user_task):
        with pytest.raises(SyscallError) as info:
            kernel.sched.sys_setpriority(user_task, 0, 0, -5)
        assert info.value.errno == EACCES

    def test_lowering_priority_is_unprivileged(self, kernel, user_task):
        assert kernel.sched.sys_setpriority(user_task, 0, 0, 10) == 0

    def test_root_may_raise_priority(self, kernel, root_task):
        assert kernel.sched.sys_setpriority(root_task, 0, 0, -5) == 0


class TestContainersRunAsNamespaceRoot:
    def test_default_containers_can_do_privileged_ops(self, machine_513):
        """The paper's attack model: namespace-root inside a container can
        still reach globally-shared kernel state (bugs C, D, ...)."""
        machine_513.reset()
        from repro.corpus.seeds import seed_programs

        result = machine_513.run("sender", seed_programs()["ipvs_add"])
        assert result.records[0].ok
