"""Unit tests for the VFS: mounts, namespaces, IO, device numbers."""

import pytest

from repro.kernel import Kernel
from repro.kernel.errno import (
    EBUSY,
    EEXIST,
    EINVAL,
    EISDIR,
    ENOENT,
    ENOTDIR,
    EROFS,
    SyscallError,
)
from repro.kernel.namespaces import CLONE_NEWNS, NamespaceType
from repro.kernel.vfs import O_CREAT, O_DIRECTORY, O_EXCL, O_RDONLY, normalize_path


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def task(kernel):
    return kernel.spawn_task()


class TestNormalizePath:
    def test_collapses_duplicate_slashes(self):
        assert normalize_path("//tmp///f0") == "/tmp/f0"

    def test_strips_trailing_slash(self):
        assert normalize_path("/tmp/") == "/tmp"

    def test_drops_dot_segments(self):
        assert normalize_path("/tmp/./f0") == "/tmp/f0"

    def test_relative_path_rejected(self):
        with pytest.raises(SyscallError) as info:
            normalize_path("tmp/f0")
        assert info.value.errno == ENOENT

    def test_empty_path_rejected(self):
        with pytest.raises(SyscallError):
            normalize_path("")


class TestLookupAndOpen:
    def test_boot_filesystem_layout(self, kernel, task):
        for path in ("/", "/tmp", "/etc", "/proc", "/etc/hostname"):
            mount, inode, __ = kernel.vfs.lookup(task, path)
            assert inode is not None

    def test_missing_file_is_enoent(self, kernel, task):
        with pytest.raises(SyscallError) as info:
            kernel.vfs.lookup(task, "/tmp/nothing")
        assert info.value.errno == ENOENT

    def test_open_creat_creates(self, kernel, task):
        open_file = kernel.vfs.open(task, "/tmp/new", O_CREAT)
        assert open_file.inode.is_dir is False

    def test_open_excl_on_existing_fails(self, kernel, task):
        kernel.vfs.open(task, "/tmp/new", O_CREAT)
        with pytest.raises(SyscallError) as info:
            kernel.vfs.open(task, "/tmp/new", O_CREAT | O_EXCL)
        assert info.value.errno == EEXIST

    def test_open_directory_flag_on_file_fails(self, kernel, task):
        kernel.vfs.open(task, "/tmp/new", O_CREAT)
        with pytest.raises(SyscallError) as info:
            kernel.vfs.open(task, "/tmp/new", O_RDONLY | O_DIRECTORY)
        assert info.value.errno == ENOTDIR

    def test_create_in_missing_parent_fails(self, kernel, task):
        with pytest.raises(SyscallError) as info:
            kernel.vfs.open(task, "/tmp/no/f", O_CREAT)
        assert info.value.errno == ENOENT

    def test_resource_kind_by_location(self, kernel, task):
        assert kernel.vfs.open(task, "/tmp/x", O_CREAT).resource_kind == "fd_file"
        assert kernel.vfs.open(task, "/proc/net/ptype", 0).resource_kind == "fd_proc_net"
        assert kernel.vfs.open(task, "/proc/crypto", 0).resource_kind == "fd_proc"
        assert kernel.vfs.open(
            task, "/proc/sys/net/netfilter/nf_conntrack_max", 0
        ).resource_kind == "fd_proc_sys_net"
        assert kernel.vfs.open(
            task, "/proc/sys/kernel/hostname", 0
        ).resource_kind == "fd_proc_sys_kernel"


class TestReadWrite:
    def test_write_then_read(self, kernel, task):
        open_file = kernel.vfs.open(task, "/tmp/f", O_CREAT)
        kernel.vfs.write_file(task, open_file, "hello", 0)
        assert kernel.vfs.read_file(task, open_file, 100, 0) == "hello"

    def test_write_at_offset_pads(self, kernel, task):
        open_file = kernel.vfs.open(task, "/tmp/f", O_CREAT)
        kernel.vfs.write_file(task, open_file, "x", 3)
        assert kernel.vfs.read_file(task, open_file, 100, 0) == "\0\0\0x"

    def test_overwrite_middle(self, kernel, task):
        open_file = kernel.vfs.open(task, "/tmp/f", O_CREAT)
        kernel.vfs.write_file(task, open_file, "abcdef", 0)
        kernel.vfs.write_file(task, open_file, "XY", 2)
        assert kernel.vfs.read_file(task, open_file, 100, 0) == "abXYef"

    def test_read_window(self, kernel, task):
        open_file = kernel.vfs.open(task, "/tmp/f", O_CREAT)
        kernel.vfs.write_file(task, open_file, "abcdef", 0)
        assert kernel.vfs.read_file(task, open_file, 2, 1) == "bc"

    def test_write_updates_size(self, kernel, task):
        open_file = kernel.vfs.open(task, "/tmp/f", O_CREAT)
        kernel.vfs.write_file(task, open_file, "hello", 0)
        assert open_file.inode.peek("size") == 5

    def test_read_directory_is_eisdir(self, kernel, task):
        open_file = kernel.vfs.open(task, "/tmp", O_RDONLY)
        with pytest.raises(SyscallError) as info:
            kernel.vfs.read_file(task, open_file, 10, 0)
        assert info.value.errno == EISDIR

    def test_write_proc_readonly_file_fails(self, kernel, task):
        open_file = kernel.vfs.open(task, "/proc/crypto", 0)
        with pytest.raises(SyscallError):
            kernel.vfs.write_file(task, open_file, "x", 0)


class TestDirectories:
    def test_mkdir_and_list(self, kernel, task):
        kernel.vfs.mkdir(task, "/tmp/d")
        mount, __ = kernel.vfs.resolve(task, "/tmp")
        assert "d" in kernel.vfs.list_dir(mount, "")

    def test_mkdir_existing_is_eexist(self, kernel, task):
        kernel.vfs.mkdir(task, "/tmp/d")
        with pytest.raises(SyscallError) as info:
            kernel.vfs.mkdir(task, "/tmp/d")
        assert info.value.errno == EEXIST

    def test_mkdir_under_proc_is_erofs(self, kernel, task):
        with pytest.raises(SyscallError) as info:
            kernel.vfs.mkdir(task, "/proc/d")
        assert info.value.errno == EROFS

    def test_unlink_removes(self, kernel, task):
        kernel.vfs.open(task, "/tmp/f", O_CREAT)
        kernel.vfs.unlink(task, "/tmp/f")
        with pytest.raises(SyscallError):
            kernel.vfs.lookup(task, "/tmp/f")

    def test_unlink_directory_is_eisdir(self, kernel, task):
        kernel.vfs.mkdir(task, "/tmp/d")
        with pytest.raises(SyscallError) as info:
            kernel.vfs.unlink(task, "/tmp/d")
        assert info.value.errno == EISDIR

    def test_list_nested_only_direct_children(self, kernel, task):
        kernel.vfs.mkdir(task, "/tmp/d")
        kernel.vfs.open(task, "/tmp/d/f", O_CREAT)
        kernel.vfs.open(task, "/tmp/g", O_CREAT)
        mount, __ = kernel.vfs.resolve(task, "/tmp")
        assert kernel.vfs.list_dir(mount, "") == ["d", "g"]
        assert kernel.vfs.list_dir(mount, "d") == ["f"]


class TestMounts:
    def test_mount_shadows_and_umount_reveals(self, kernel, task):
        kernel.vfs.open(task, "/tmp/old", O_CREAT)
        kernel.vfs.mount(task, "none", "/tmp", "tmpfs")
        with pytest.raises(SyscallError):
            kernel.vfs.lookup(task, "/tmp/old")
        kernel.vfs.umount(task, "/tmp")
        kernel.vfs.lookup(task, "/tmp/old")

    def test_mount_on_missing_target_fails(self, kernel, task):
        with pytest.raises(SyscallError):
            kernel.vfs.mount(task, "none", "/tmp/missing", "tmpfs")

    def test_mount_unknown_fs_fails(self, kernel, task):
        with pytest.raises(SyscallError):
            kernel.vfs.mount(task, "none", "/tmp", "xfs")

    def test_umount_root_is_ebusy(self, kernel, task):
        with pytest.raises(SyscallError) as info:
            kernel.vfs.umount(task, "/")
        assert info.value.errno == EBUSY

    def test_umount_non_mountpoint_is_einval(self, kernel, task):
        with pytest.raises(SyscallError) as info:
            kernel.vfs.umount(task, "/etc")
        assert info.value.errno == EINVAL

    def test_device_minors_come_from_global_allocator(self, kernel, task):
        first = kernel.vfs.new_superblock("tmpfs").peek("s_dev")
        second = kernel.vfs.new_superblock("ramfs").peek("s_dev")
        assert second == first + 1


class TestMountNamespaces:
    def test_unshare_copies_mount_table(self, kernel):
        task = kernel.spawn_task()
        kernel.unshare(task, CLONE_NEWNS)
        host_ns = kernel.init_mnt_ns
        own_ns = task.nsproxy.get(NamespaceType.MNT)
        assert own_ns is not host_ns
        assert len(own_ns.mounts) == len(host_ns.mounts)

    def test_copies_share_superblocks(self, kernel):
        task = kernel.spawn_task()
        kernel.unshare(task, CLONE_NEWNS)
        own_ns = task.nsproxy.get(NamespaceType.MNT)
        assert own_ns.find_mount("/tmp").sb is kernel.init_mnt_ns.find_mount("/tmp").sb

    def test_umount_in_copy_does_not_affect_host(self, kernel):
        task = kernel.spawn_task()
        kernel.unshare(task, CLONE_NEWNS)
        kernel.vfs.umount(task, "/tmp")
        assert kernel.init_mnt_ns.mount_at("/tmp") is not None

    def test_fresh_tmpfs_isolates_files(self, kernel):
        host_task = kernel.init_task
        container = kernel.spawn_task()
        kernel.unshare(container, CLONE_NEWNS)
        kernel.vfs.mount(container, "none", "/tmp", "tmpfs")
        kernel.vfs.open(host_task, "/tmp/host-file", O_CREAT)
        with pytest.raises(SyscallError):
            kernel.vfs.lookup(container, "/tmp/host-file")

    def test_stat_fills_expected_fields(self, kernel, task):
        open_file = kernel.vfs.open(task, "/tmp/f", O_CREAT)
        kernel.vfs.write_file(task, open_file, "abc", 0)
        mount, inode, __ = kernel.vfs.lookup(task, "/tmp/f")
        stat = kernel.vfs.stat_inode(task, mount, inode)
        assert stat["st_size"] == 3
        assert stat["st_nlink"] == 1
        assert stat["st_dev"] == mount.sb.peek("s_dev")

    def test_proc_stat_times_follow_clock(self, kernel, task):
        mount, inode, __ = kernel.vfs.lookup(task, "/proc/uptime")
        before = kernel.vfs.stat_inode(task, mount, inode)["st_mtime"]
        kernel.clock.tick(5000)
        after = kernel.vfs.stat_inode(task, mount, inode)["st_mtime"]
        assert after > before
