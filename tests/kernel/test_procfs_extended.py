"""Tests for the extended procfs surface: per-pid status, sysvipc, net/tcp."""

import pytest

from repro.corpus.program import prog
from repro.kernel import Kernel
from repro.kernel.errno import EINVAL, SyscallError
from repro.kernel.ipc import IPC_CREAT
from repro.kernel.namespaces import (
    CLONE_NEWIPC,
    CLONE_NEWNET,
    CLONE_NEWPID,
    NamespaceType,
)
from repro.vm.executor import Executor


@pytest.fixture
def kernel():
    return Kernel()


class TestProcStatus:
    def test_self_status_basic_fields(self, kernel):
        task = kernel.spawn_task(comm="probe", uid=1000)
        content = kernel.procfs.render(task, "self/status")
        assert "Name:\tprobe" in content
        assert f"Pid:\t{task.pid}" in content
        assert "Uid:\t1000" in content

    def test_status_by_pid_in_own_namespace(self, kernel):
        reader = kernel.spawn_task(comm="reader")
        target = kernel.spawn_task(comm="target")
        content = kernel.procfs.render(reader, f"{target.pid}/status")
        assert "Name:\ttarget" in content

    def test_invisible_pid_rejected(self, kernel):
        reader = kernel.spawn_task()
        hidden = kernel.spawn_task(comm="hidden")
        kernel.unshare(reader, CLONE_NEWPID)
        kernel.unshare(hidden, CLONE_NEWPID)
        # In reader's fresh pid ns only the reader itself (pid 1) exists.
        with pytest.raises(SyscallError):
            kernel.procfs.render(reader, "2/status")

    def test_pid_translated_into_reader_namespace(self, kernel):
        parent_reader = kernel.init_task
        child = kernel.spawn_task(comm="child")
        global_pid = child.pid
        kernel.unshare(child, CLONE_NEWPID)
        # From the init namespace the child keeps its outer pid...
        outer = kernel.procfs.render(parent_reader, f"{global_pid}/status")
        assert f"Pid:\t{global_pid}" in outer
        # ...while its own view says pid 1.
        own = kernel.procfs.render(child, "self/status")
        assert "Pid:\t1" in own

    def test_nspid_shows_namespace_chain(self, kernel):
        child = kernel.spawn_task(comm="child")
        global_pid = child.pid
        kernel.unshare(child, CLONE_NEWPID)
        content = kernel.procfs.render(kernel.init_task,
                                       f"{global_pid}/status")
        assert f"NSpid:\t{global_pid} 1" in content

    def test_proc_root_lists_visible_pids(self, kernel):
        reader = kernel.spawn_task()
        kernel.unshare(reader, CLONE_NEWPID)
        names = kernel.procfs.list_dir("", reader)
        assert "1" in names          # the reader itself
        assert "2" not in names      # nobody else in the fresh ns

    def test_getdents_on_proc_root_includes_pids(self, kernel):
        task = kernel.spawn_task()
        result = Executor(kernel, task).run(prog(
            ("open", "/proc", 0o200000),
            ("getdents64", "r0"),
        ))
        entries = result.records[1].details["entries"]
        assert str(task.pid) in entries
        assert "net" in entries


class TestProcSelfNs:
    def test_readable_ns_links(self, kernel):
        task = kernel.spawn_task()
        content = kernel.procfs.render(task, "self/ns/net")
        net_ns = task.nsproxy.get(NamespaceType.NET)
        assert content == f"net:[{net_ns.inum}]\n"

    def test_ns_link_changes_after_unshare(self, kernel):
        task = kernel.spawn_task()
        before = kernel.procfs.render(task, "self/ns/net")
        kernel.unshare(task, CLONE_NEWNET)
        after = kernel.procfs.render(task, "self/ns/net")
        assert before != after

    def test_ns_dir_lists_all_types(self, kernel):
        names = kernel.procfs.list_dir("self/ns")
        assert len(names) == 8


class TestSysvipcProc:
    def test_lists_own_namespace_queues(self, kernel):
        task = kernel.spawn_task()
        msqid = kernel.ipc.msgget(task, 0xAA, IPC_CREAT)
        content = kernel.procfs.render(task, "sysvipc/msg")
        assert str(msqid) in content

    def test_does_not_list_foreign_queues(self, kernel):
        owner = kernel.spawn_task()
        reader = kernel.spawn_task()
        kernel.unshare(owner, CLONE_NEWIPC)
        kernel.unshare(reader, CLONE_NEWIPC)
        msqid = kernel.ipc.msgget(owner, 0xAA, IPC_CREAT)
        content = kernel.procfs.render(reader, "sysvipc/msg")
        assert str(msqid) not in content.split("\n", 1)[1]


class TestProcNetSockets:
    def test_bound_tcp_socket_listed(self, kernel):
        task = kernel.spawn_task()
        sock = kernel.net.socket_create(task, 2, 1, 6)
        kernel.net.bind(task, sock, 0x0A000001, 80)
        kernel.net.listen(task, sock)
        content = kernel.procfs.render(task, "net/tcp")
        assert "0A000001:0050 0A" in content

    def test_udp_and_tcp_separated(self, kernel):
        task = kernel.spawn_task()
        udp = kernel.net.socket_create(task, 2, 2, 17)
        kernel.net.bind(task, udp, 0x0A000001, 53)
        assert "0035" in kernel.procfs.render(task, "net/udp")
        assert "0035" not in kernel.procfs.render(task, "net/tcp")

    def test_foreign_namespace_sockets_invisible(self, kernel):
        owner = kernel.spawn_task()
        reader = kernel.spawn_task()
        kernel.unshare(owner, CLONE_NEWNET)
        kernel.unshare(reader, CLONE_NEWNET)
        sock = kernel.net.socket_create(owner, 2, 1, 6)
        kernel.net.bind(owner, sock, 0x0A000001, 80)
        content = kernel.procfs.render(reader, "net/tcp")
        assert "0A000001:0050" not in content
