"""Race-only bugs T1-T3 (satellite 2): found only under interleaving.

Each injected race opens and closes its global window *inside one sender
syscall*, so the classic two-phase harness is structurally blind to it:
the sequential campaign over the race corpus must report nothing on any
budget.  Under controlled interleaving the default schedule budget must
find every one, the oracle must label each correctly, and the static
race analyzer must already rank each bug's (sender, receiver) entry pair
R0 — the prioritization that ``--schedule-pairs`` feeds on.
"""

from __future__ import annotations

import pytest

from repro.analysis.accessmap import extract_access_map
from repro.analysis.races import find_race_candidates
from repro.core.race_scenarios import race_scenarios, reproduce_races
from repro.core.schedule import ScheduleId, program_entries, ranked_pair_names
from repro.kernel.bugs import RACE_BUGS, race_kernel

RACE_IDS = sorted(RACE_BUGS)


# -- sequential blindness -----------------------------------------------------


class TestSequentialBlindness:
    def test_sequential_campaign_reports_nothing(self):
        result = reproduce_races(interleave=False)
        assert result.reports == []
        assert result.bugs_found() == set()
        assert result.stats.schedules_executed == 0

    @pytest.mark.parametrize("bug_id", RACE_IDS)
    def test_each_bug_invisible_alone(self, bug_id):
        result = reproduce_races(bug_id, interleave=False)
        assert result.reports == []
        assert result.bugs_found() == set()


# -- interleaved discovery at the default budget ------------------------------


class TestInterleavedDiscovery:
    @pytest.mark.parametrize("bug_id", RACE_IDS)
    def test_each_bug_found_and_labeled(self, bug_id):
        scenario = race_scenarios()[bug_id]
        result = reproduce_races(bug_id)
        assert result.bugs_found() == {bug_id}
        assert len(result.reports) == 1
        report = result.reports[0]
        assert report.culprit_schedule is not None
        ScheduleId.parse(report.culprit_schedule)  # a well-formed name
        assert report.witnesses[report.culprit_schedule]
        assert scenario.observed_via in report.render()

    def test_all_bugs_found_together_at_default_budget(self):
        result = reproduce_races()
        assert sorted(result.bugs_found()) == RACE_IDS
        assert result.stats.interleaved_reports == len(RACE_IDS)

    def test_pair_prioritized_campaign_still_finds_all(self):
        """Restricting exploration to the analyzer's top candidates keeps
        full coverage (top-16 spans all three race pairs; see
        docs/SCHEDULING.md for why top-8 does not)."""
        result = reproduce_races(schedule_pairs=16)
        assert sorted(result.bugs_found()) == RACE_IDS


# -- the static analyzer already points at these pairs ------------------------


class TestRaceCandidateRanking:
    @pytest.fixture(scope="class")
    def candidates(self):
        return find_race_candidates(extract_access_map(race_kernel()))

    def test_every_race_pair_ranks_r0(self, candidates):
        best = {}
        for candidate in candidates:
            key = (candidate.entry_a, candidate.entry_b)
            best[key] = min(best.get(key, 9), candidate.rank)
        for bug_id in RACE_IDS:
            scenario = race_scenarios()[bug_id]
            entries = {tuple(sorted((a, b)))
                       for a in program_entries(scenario.sender)
                       for b in program_entries(scenario.receiver)}
            ranked = [best[pair] for pair in entries if pair in best]
            assert 0 in ranked, (bug_id, sorted(entries), best)

    def test_top_n_prioritization_covers_all_pairs(self, candidates):
        pairs = ranked_pair_names(candidates, 16)
        assert ("msgget", "proc:sysvipc/msg") in pairs
        assert ("proc:net/sockstat", "sendto") in pairs
        assert ("ip_link_add", "proc:net/dev") in pairs
