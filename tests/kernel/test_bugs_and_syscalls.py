"""Unit tests for the bug registry, presets, and syscall declarations."""

import dataclasses

import pytest

from repro.kernel import Kernel, fixed_kernel, known_bug_kernel, linux_5_13
from repro.kernel.bugs import (
    RAND_DETECTABLE,
    TABLE2_BUGS,
    TABLE3_BUGS,
    BugFlags,
    kernel_version_for,
    table2_flag_names,
)
from repro.kernel.errno import ENOSYS, SyscallError
from repro.kernel.syscalls import DECLS, dispatch
from repro.kernel.syscalls.decl import ArgSpec, DeclRegistry, SyscallDecl


class TestBugFlags:
    def test_fixed_kernel_has_no_bugs(self):
        assert fixed_kernel().enabled() == []

    def test_linux_5_13_has_the_seven_table2_flags(self):
        enabled = set(linux_5_13().enabled())
        assert enabled == set(table2_flag_names())

    def test_table2_maps_nine_bugs(self):
        assert sorted(TABLE2_BUGS) == list(range(1, 10))

    def test_bug_2_and_4_share_a_root_cause(self):
        assert TABLE2_BUGS[2][0] == TABLE2_BUGS[4][0] == \
            "flowlabel_exclusive_global"

    def test_bug_8_and_9_share_a_root_cause(self):
        assert TABLE2_BUGS[8][0] == TABLE2_BUGS[9][0] == "proto_mem_global"

    def test_known_bug_kernels_enable_exactly_one_flag(self):
        for bug_id in TABLE3_BUGS:
            flags = known_bug_kernel(bug_id)
            assert len(flags.enabled()) == 1, bug_id

    def test_kernel_versions_match_table3(self):
        assert kernel_version_for("A") == "4.4"
        assert kernel_version_for("B") == "3.14"
        assert kernel_version_for("C") == "4.15"
        assert kernel_version_for("D") == "5.13"
        assert kernel_version_for("E") == "5.6"

    def test_copy_overrides(self):
        flags = fixed_kernel().copy(ptype_leak=True)
        assert flags.enabled() == ["ptype_leak"]

    def test_rand_detectable_is_paper_subset(self):
        assert RAND_DETECTABLE == {1, 2, 5, 7, 9}

    def test_every_flag_is_boolean_default_false(self):
        for field in dataclasses.fields(BugFlags):
            assert field.default is False, field.name


class TestDeclRegistry:
    def test_duplicate_registration_rejected(self):
        registry = DeclRegistry()
        registry.add(SyscallDecl("x", args=()))
        with pytest.raises(ValueError):
            registry.add(SyscallDecl("x", args=()))

    def test_bad_arg_kind_rejected(self):
        with pytest.raises(ValueError):
            ArgSpec("a", "banana")

    def test_fd_arg_requires_resource(self):
        with pytest.raises(ValueError):
            ArgSpec("fd", "fd")

    def test_global_registry_is_populated(self):
        # The syscall surface should be substantial (~35+ calls).
        assert len(DECLS.names()) >= 35

    def test_key_syscalls_present(self):
        for name in ("socket", "bind", "connect", "sendto", "open", "read",
                     "pread64", "unshare", "msgget", "setpriority",
                     "io_uring_setup", "ip_link_add", "getsockopt"):
            assert name in DECLS, name

    def test_resource_args_have_resources(self):
        for decl in DECLS.all():
            for arg in decl.resource_args():
                assert arg.resource

    def test_producers_declare_ret_resource(self):
        assert DECLS.get("socket").ret_resource == "sock"
        assert DECLS.get("open").ret_resource == "fd_file"
        assert DECLS.get("msgget").ret_resource == "msqid"

    def test_value_domains_nonempty_for_value_args(self):
        for decl in DECLS.all():
            for arg in decl.args:
                if arg.kind in ("int", "flags", "str", "path"):
                    assert arg.choices, (decl.name, arg.name)


class TestDispatch:
    def test_unknown_syscall_is_enosys(self):
        kernel = Kernel()
        task = kernel.spawn_task()
        with pytest.raises(SyscallError) as info:
            dispatch(kernel, task, "frobnicate", [])
        assert info.value.errno == ENOSYS

    def test_wrong_arity_is_enosys(self):
        kernel = Kernel()
        task = kernel.spawn_task()
        with pytest.raises(SyscallError) as info:
            dispatch(kernel, task, "socket", [1])
        assert info.value.errno == ENOSYS

    def test_every_declared_syscall_has_a_handler(self):
        from repro.kernel.syscalls.table import HANDLERS

        assert set(DECLS.names()) == set(HANDLERS)

    def test_getpid_returns_namespace_pid(self):
        kernel = Kernel()
        task = kernel.spawn_task()
        result = dispatch(kernel, task, "getpid", [])
        assert result.retval == task.pid

    def test_type_confusion_is_einval_not_crash(self):
        kernel = Kernel()
        task = kernel.spawn_task()
        with pytest.raises(SyscallError):
            dispatch(kernel, task, "socket", ["a", "b", "c"])
