"""Unit tests for the socket layer and the per-bug network subsystems.

Each Table-2 bug gets a buggy-vs-fixed pair of tests asserting both the
interference on the vulnerable kernel and its absence after the patch.
"""

import pytest

from repro.kernel import Kernel, fixed_kernel, known_bug_kernel, linux_5_13
from repro.kernel.errno import (
    EADDRINUSE,
    EAGAIN,
    ECONNREFUSED,
    EINVAL,
    ENOENT,
    ENOTCONN,
    EPERM,
    EPROTONOSUPPORT,
    SyscallError,
)
from repro.kernel.namespaces import CLONE_NEWNET, NamespaceType
from repro.kernel.net.flowlabel import FL_SHARE_ANY, FL_SHARE_EXCL
from repro.kernel.net.packet import ETH_P_ALL
from repro.kernel.net.socket import (
    AF_INET,
    AF_INET6,
    AF_NETLINK,
    AF_PACKET,
    AF_RDS,
    AF_UNIX,
    IPPROTO_SCTP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    NETLINK_KOBJECT_UEVENT,
    SOCK_DGRAM,
    SOCK_RAW,
    SOCK_SEQPACKET,
    SOCK_STREAM,
)

ADDR = 0x0A000001


def make_pair(bugs):
    """Kernel plus two tasks in sibling net namespaces."""
    kernel = Kernel(bugs=bugs)
    sender = kernel.spawn_task(comm="s")
    receiver = kernel.spawn_task(comm="r")
    kernel.unshare(sender, CLONE_NEWNET)
    kernel.unshare(receiver, CLONE_NEWNET)
    return kernel, sender, receiver


def netns(task):
    return task.nsproxy.get(NamespaceType.NET)


def sock(kernel, task, family, sock_type, proto=0):
    return kernel.net.socket_create(task, family, sock_type, proto)


class TestSocketCreation:
    def test_unknown_family_is_einval(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        with pytest.raises(SyscallError) as info:
            sock(kernel, sender, 99, SOCK_STREAM)
        assert info.value.errno == EINVAL

    def test_rds_requires_seqpacket(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        with pytest.raises(SyscallError) as info:
            sock(kernel, sender, AF_RDS, SOCK_STREAM)
        assert info.value.errno == EPROTONOSUPPORT

    def test_resource_kinds(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        cases = [
            ((AF_INET, SOCK_STREAM, IPPROTO_TCP), "sock_tcp"),
            ((AF_INET, SOCK_DGRAM, IPPROTO_UDP), "sock_udp"),
            ((AF_INET6, SOCK_DGRAM, 0), "sock_udp6"),
            ((AF_PACKET, SOCK_RAW, ETH_P_ALL), "sock_packet"),
            ((AF_RDS, SOCK_SEQPACKET, 0), "sock_rds"),
            ((AF_UNIX, SOCK_STREAM, 0), "sock_unix"),
            ((AF_INET, SOCK_STREAM, IPPROTO_SCTP), "sock_sctp"),
            ((AF_NETLINK, SOCK_DGRAM, NETLINK_KOBJECT_UEVENT),
             "sock_netlink_uevent"),
        ]
        for triple, expected in cases:
            assert sock(kernel, sender, *triple).resource_kind == expected

    def test_release_decrements_counters(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        socket = sock(kernel, sender, AF_INET, SOCK_STREAM, IPPROTO_TCP)
        ns = netns(sender)
        assert ns.sockets_used.peek() == 1
        kernel.net.release(socket)
        assert ns.sockets_used.peek() == 0


class TestBindConnect:
    def test_bind_conflict_within_namespace(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        first = sock(kernel, sender, AF_INET, SOCK_STREAM, IPPROTO_TCP)
        second = sock(kernel, sender, AF_INET, SOCK_STREAM, IPPROTO_TCP)
        kernel.net.bind(sender, first, ADDR, 80)
        with pytest.raises(SyscallError) as info:
            kernel.net.bind(sender, second, ADDR, 80)
        assert info.value.errno == EADDRINUSE

    def test_inet_bind_is_per_namespace(self):
        kernel, sender, receiver = make_pair(fixed_kernel())
        kernel.net.bind(sender, sock(kernel, sender, AF_INET, SOCK_STREAM,
                                     IPPROTO_TCP), ADDR, 80)
        kernel.net.bind(receiver, sock(kernel, receiver, AF_INET, SOCK_STREAM,
                                       IPPROTO_TCP), ADDR, 80)

    def test_tcp_connect_needs_listener(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        client = sock(kernel, sender, AF_INET, SOCK_STREAM, IPPROTO_TCP)
        with pytest.raises(SyscallError) as info:
            kernel.net.connect(sender, client, ADDR, 80)
        assert info.value.errno == ECONNREFUSED

    def test_tcp_connect_to_listener_succeeds(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        server = sock(kernel, sender, AF_INET, SOCK_STREAM, IPPROTO_TCP)
        kernel.net.bind(sender, server, ADDR, 80)
        kernel.net.listen(sender, server)
        client = sock(kernel, sender, AF_INET, SOCK_STREAM, IPPROTO_TCP)
        assert kernel.net.connect(sender, client, ADDR, 80) == 0

    def test_listener_in_other_namespace_invisible(self):
        kernel, sender, receiver = make_pair(fixed_kernel())
        server = sock(kernel, sender, AF_INET, SOCK_STREAM, IPPROTO_TCP)
        kernel.net.bind(sender, server, ADDR, 80)
        kernel.net.listen(sender, server)
        client = sock(kernel, receiver, AF_INET, SOCK_STREAM, IPPROTO_TCP)
        with pytest.raises(SyscallError):
            kernel.net.connect(receiver, client, ADDR, 80)

    def test_listen_unbound_is_einval(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        socket = sock(kernel, sender, AF_INET, SOCK_STREAM, IPPROTO_TCP)
        with pytest.raises(SyscallError) as info:
            kernel.net.listen(sender, socket)
        assert info.value.errno == EINVAL

    def test_stream_sendto_unconnected_is_enotconn(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        socket = sock(kernel, sender, AF_INET, SOCK_STREAM, IPPROTO_TCP)
        with pytest.raises(SyscallError) as info:
            kernel.net.sendto(sender, socket, 10, ADDR, 80)
        assert info.value.errno == ENOTCONN


class TestUdpDelivery:
    def test_dgram_delivery_within_namespace(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        rx = sock(kernel, sender, AF_INET, SOCK_DGRAM, IPPROTO_UDP)
        kernel.net.bind(sender, rx, ADDR, 9000)
        tx = sock(kernel, sender, AF_INET, SOCK_DGRAM, IPPROTO_UDP)
        kernel.net.sendto(sender, tx, 5, ADDR, 9000)
        assert kernel.net.recvfrom(sender, rx, 100) == "xxxxx"

    def test_empty_queue_is_eagain(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        rx = sock(kernel, sender, AF_INET, SOCK_DGRAM, IPPROTO_UDP)
        with pytest.raises(SyscallError) as info:
            kernel.net.recvfrom(sender, rx, 100)
        assert info.value.errno == EAGAIN

    def test_no_cross_namespace_delivery(self):
        kernel, sender, receiver = make_pair(fixed_kernel())
        rx = sock(kernel, receiver, AF_INET, SOCK_DGRAM, IPPROTO_UDP)
        kernel.net.bind(receiver, rx, ADDR, 9000)
        tx = sock(kernel, sender, AF_INET, SOCK_DGRAM, IPPROTO_UDP)
        kernel.net.sendto(sender, tx, 5, ADDR, 9000)
        with pytest.raises(SyscallError):
            kernel.net.recvfrom(receiver, rx, 100)

    def test_sendto_creates_conntrack_entry(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        tx = sock(kernel, sender, AF_INET, SOCK_DGRAM, IPPROTO_UDP)
        kernel.net.sendto(sender, tx, 5, ADDR, 9000)
        assert any(e.proto == "udp"
                   for e in kernel.conntrack.entries.peek_items())


class TestBug1Ptype:
    def test_buggy_kernel_leaks_packet_sockets(self):
        kernel, sender, receiver = make_pair(linux_5_13())
        sock(kernel, sender, AF_PACKET, SOCK_RAW, ETH_P_ALL)
        content = kernel.ptype.render_proc_ptype(receiver, netns(receiver))
        assert "packet_rcv" in content

    def test_fixed_kernel_hides_foreign_packet_sockets(self):
        kernel, sender, receiver = make_pair(fixed_kernel())
        sock(kernel, sender, AF_PACKET, SOCK_RAW, ETH_P_ALL)
        content = kernel.ptype.render_proc_ptype(receiver, netns(receiver))
        assert "packet_rcv" not in content

    def test_own_packet_socket_always_visible(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        sock(kernel, sender, AF_PACKET, SOCK_RAW, ETH_P_ALL)
        content = kernel.ptype.render_proc_ptype(sender, netns(sender))
        assert "packet_rcv" in content

    def test_builtin_handlers_visible_everywhere(self):
        kernel, __, receiver = make_pair(fixed_kernel())
        content = kernel.ptype.render_proc_ptype(receiver, netns(receiver))
        assert "ip_rcv" in content

    def test_close_unregisters_handler(self):
        kernel, sender, receiver = make_pair(linux_5_13())
        socket = sock(kernel, sender, AF_PACKET, SOCK_RAW, ETH_P_ALL)
        kernel.net.release(socket)
        content = kernel.ptype.render_proc_ptype(receiver, netns(receiver))
        assert "packet_rcv" not in content


class TestBug2And4FlowLabels:
    def _register_exclusive(self, kernel, task, label=0xBEEF):
        socket = sock(kernel, task, AF_INET6, SOCK_DGRAM)
        kernel.net.setsockopt(task, socket, 41, 32, label, FL_SHARE_EXCL)

    def _labelled_socket(self, kernel, task, label=0xCAFE):
        socket = sock(kernel, task, AF_INET6, SOCK_DGRAM)
        kernel.net.setsockopt(task, socket, 41, 33, label, 0)
        return socket

    def test_lenient_mode_allows_any_label(self):
        kernel, __, receiver = make_pair(linux_5_13())
        socket = self._labelled_socket(kernel, receiver)
        assert kernel.net.sendto(receiver, socket, 10, ADDR, 80) == 10

    def test_bug2_sender_flips_receiver_to_strict_send(self):
        kernel, sender, receiver = make_pair(linux_5_13())
        self._register_exclusive(kernel, sender)
        socket = self._labelled_socket(kernel, receiver)
        with pytest.raises(SyscallError) as info:
            kernel.net.sendto(receiver, socket, 10, ADDR, 80)
        assert info.value.errno == EPERM

    def test_bug4_sender_flips_receiver_to_strict_connect(self):
        kernel, sender, receiver = make_pair(linux_5_13())
        self._register_exclusive(kernel, sender)
        socket = self._labelled_socket(kernel, receiver)
        with pytest.raises(SyscallError) as info:
            kernel.net.connect(receiver, socket, ADDR, 80)
        assert info.value.errno == EPERM

    def test_fixed_kernel_strict_mode_is_per_namespace(self):
        kernel, sender, receiver = make_pair(fixed_kernel())
        self._register_exclusive(kernel, sender)
        socket = self._labelled_socket(kernel, receiver)
        assert kernel.net.sendto(receiver, socket, 10, ADDR, 80) == 10

    def test_strict_mode_accepts_registered_label(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        self._register_exclusive(kernel, sender, label=0xBEEF)
        socket = sock(kernel, sender, AF_INET6, SOCK_DGRAM)
        kernel.net.setsockopt(sender, socket, 41, 33, 0xBEEF, 0)
        assert kernel.net.sendto(sender, socket, 10, ADDR, 80) == 10

    def test_exclusive_label_collision_is_eexist(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        self._register_exclusive(kernel, sender, label=0xBEEF)
        with pytest.raises(SyscallError):
            self._register_exclusive(kernel, sender, label=0xBEEF)

    def test_release_restores_lenient_mode(self):
        kernel, sender, receiver = make_pair(linux_5_13())
        self._register_exclusive(kernel, sender, label=0xBEEF)
        kernel.flowlabel.fl_release(sender, netns(sender), 0xBEEF)
        socket = self._labelled_socket(kernel, receiver)
        assert kernel.net.sendto(receiver, socket, 10, ADDR, 80) == 10

    def test_label_zero_is_reserved(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        socket = sock(kernel, sender, AF_INET6, SOCK_DGRAM)
        with pytest.raises(SyscallError) as info:
            kernel.net.setsockopt(sender, socket, 41, 32, 0, FL_SHARE_EXCL)
        assert info.value.errno == EINVAL

    def test_shared_label_does_not_flip_strict_mode(self):
        kernel, sender, receiver = make_pair(linux_5_13())
        socket = sock(kernel, sender, AF_INET6, SOCK_DGRAM)
        kernel.net.setsockopt(sender, socket, 41, 32, 0xBEEF, FL_SHARE_ANY)
        labelled = self._labelled_socket(kernel, receiver)
        assert kernel.net.sendto(receiver, labelled, 10, ADDR, 80) == 10


class TestBug3Rds:
    def test_buggy_kernel_bind_collides_across_namespaces(self):
        kernel, sender, receiver = make_pair(linux_5_13())
        kernel.net.bind(sender, sock(kernel, sender, AF_RDS, SOCK_SEQPACKET),
                        ADDR, 4000)
        with pytest.raises(SyscallError) as info:
            kernel.net.bind(receiver, sock(kernel, receiver, AF_RDS,
                                           SOCK_SEQPACKET), ADDR, 4000)
        assert info.value.errno == EADDRINUSE

    def test_fixed_kernel_binds_are_per_namespace(self):
        kernel, sender, receiver = make_pair(fixed_kernel())
        kernel.net.bind(sender, sock(kernel, sender, AF_RDS, SOCK_SEQPACKET),
                        ADDR, 4000)
        kernel.net.bind(receiver, sock(kernel, receiver, AF_RDS, SOCK_SEQPACKET),
                        ADDR, 4000)

    def test_rds_release_frees_the_slot(self):
        kernel, sender, receiver = make_pair(linux_5_13())
        socket = sock(kernel, sender, AF_RDS, SOCK_SEQPACKET)
        kernel.net.bind(sender, socket, ADDR, 4000)
        kernel.net.release(socket)
        kernel.net.bind(receiver, sock(kernel, receiver, AF_RDS, SOCK_SEQPACKET),
                        ADDR, 4000)

    def test_rds_bind_port_zero_is_einval(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        with pytest.raises(SyscallError) as info:
            kernel.net.bind(sender, sock(kernel, sender, AF_RDS, SOCK_SEQPACKET),
                            ADDR, 0)
        assert info.value.errno == EINVAL


class TestBug6Cookies:
    def _cookie(self, kernel, task):
        socket = sock(kernel, task, AF_INET, SOCK_STREAM, IPPROTO_TCP)
        return kernel.net.getsockopt(task, socket, 1, 57)

    def test_buggy_kernel_shares_cookie_space(self):
        kernel, sender, receiver = make_pair(linux_5_13())
        assert self._cookie(kernel, sender) == 1
        assert self._cookie(kernel, receiver) == 2

    def test_fixed_kernel_cookie_space_per_namespace(self):
        kernel, sender, receiver = make_pair(fixed_kernel())
        assert self._cookie(kernel, sender) == 1
        assert self._cookie(kernel, receiver) == 1

    def test_cookie_is_stable_per_socket(self):
        kernel, sender, __ = make_pair(linux_5_13())
        socket = sock(kernel, sender, AF_INET, SOCK_STREAM, IPPROTO_TCP)
        first = kernel.net.getsockopt(sender, socket, 1, 57)
        second = kernel.net.getsockopt(sender, socket, 1, 57)
        assert first == second


class TestBug7Sctp:
    def _assoc(self, kernel, task):
        socket = sock(kernel, task, AF_INET, SOCK_STREAM, IPPROTO_SCTP)
        kernel.net.connect(task, socket, ADDR, 80)
        return kernel.net.getsockopt(task, socket, 132, 1)

    def test_buggy_kernel_shares_assoc_id_space(self):
        kernel, sender, receiver = make_pair(linux_5_13())
        assert self._assoc(kernel, sender) == 1
        assert self._assoc(kernel, receiver) == 2

    def test_fixed_kernel_assoc_ids_per_namespace(self):
        kernel, sender, receiver = make_pair(fixed_kernel())
        assert self._assoc(kernel, sender) == 1
        assert self._assoc(kernel, receiver) == 1

    def test_assoc_id_before_connect_is_enotconn(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        socket = sock(kernel, sender, AF_INET, SOCK_STREAM, IPPROTO_SCTP)
        with pytest.raises(SyscallError) as info:
            kernel.net.getsockopt(sender, socket, 132, 1)
        assert info.value.errno == ENOTCONN


class TestBugs8And9ProtoMem:
    def _send(self, kernel, task):
        socket = sock(kernel, task, AF_INET, SOCK_DGRAM, IPPROTO_UDP)
        kernel.net.sendto(task, socket, 100, ADDR, 80)

    def test_buggy_kernel_mem_counter_leaks_in_sockstat(self):
        kernel, sender, receiver = make_pair(linux_5_13())
        self._send(kernel, sender)
        # 2 pages: one at socket allocation, one for the transmit buffer.
        content = kernel.net.render_sockstat(receiver, netns(receiver))
        assert "UDP: inuse 0 mem 2" in content

    def test_buggy_kernel_mem_counter_leaks_in_protocols(self):
        kernel, sender, receiver = make_pair(linux_5_13())
        self._send(kernel, sender)
        content = kernel.net.render_protocols(receiver, netns(receiver))
        udp_line = [l for l in content.splitlines() if l.startswith("UDP")][0]
        assert udp_line.split()[-1] == "2"

    def test_fixed_kernel_mem_counters_are_per_namespace(self):
        kernel, sender, receiver = make_pair(fixed_kernel())
        self._send(kernel, sender)
        content = kernel.net.render_sockstat(receiver, netns(receiver))
        assert "UDP: inuse 0 mem 0" in content


class TestKnownBugBUevents:
    def test_buggy_kernel_broadcasts_queue_uevents(self):
        kernel, sender, receiver = make_pair(known_bug_kernel("B"))
        listener = sock(kernel, receiver, AF_NETLINK, SOCK_DGRAM,
                        NETLINK_KOBJECT_UEVENT)
        kernel.netdev.register_netdev(sender, netns(sender), "veth0")
        message = kernel.net.recvfrom(receiver, listener, 512)
        assert "queues/rx-0" in message

    def test_fixed_kernel_queue_uevents_stay_local(self):
        kernel, sender, receiver = make_pair(fixed_kernel())
        listener = sock(kernel, receiver, AF_NETLINK, SOCK_DGRAM,
                        NETLINK_KOBJECT_UEVENT)
        kernel.netdev.register_netdev(sender, netns(sender), "veth0")
        with pytest.raises(SyscallError) as info:
            kernel.net.recvfrom(receiver, listener, 512)
        assert info.value.errno == EAGAIN

    def test_device_uevent_always_delivered_locally(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        listener = sock(kernel, sender, AF_NETLINK, SOCK_DGRAM,
                        NETLINK_KOBJECT_UEVENT)
        kernel.netdev.register_netdev(sender, netns(sender), "veth0")
        message = kernel.net.recvfrom(sender, listener, 512)
        assert message == "add@/devices/virtual/net/veth0"

    def test_duplicate_device_name_is_eexist(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        kernel.netdev.register_netdev(sender, netns(sender), "veth0")
        with pytest.raises(SyscallError):
            kernel.netdev.register_netdev(sender, netns(sender), "veth0")

    def test_ifindex_allocated_per_namespace(self):
        kernel, sender, receiver = make_pair(fixed_kernel())
        first = kernel.netdev.register_netdev(sender, netns(sender), "veth0")
        second = kernel.netdev.register_netdev(receiver, netns(receiver), "veth0")
        assert first == second  # both are ifindex 2, after loopback


class TestKnownBugCIpvs:
    def test_buggy_kernel_dumps_foreign_services(self):
        kernel, sender, receiver = make_pair(known_bug_kernel("C"))
        kernel.ipvs.add_service(sender, netns(sender), ADDR, 80)
        content = kernel.ipvs.render_proc_ip_vs(receiver, netns(receiver))
        assert "0A000001:0050" in content

    def test_fixed_kernel_filters_by_namespace(self):
        kernel, sender, receiver = make_pair(fixed_kernel())
        kernel.ipvs.add_service(sender, netns(sender), ADDR, 80)
        content = kernel.ipvs.render_proc_ip_vs(receiver, netns(receiver))
        assert "0A000001:0050" not in content

    def test_duplicate_service_is_eexist(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        kernel.ipvs.add_service(sender, netns(sender), ADDR, 80)
        with pytest.raises(SyscallError):
            kernel.ipvs.add_service(sender, netns(sender), ADDR, 80)


class TestKnownBugDConntrackMax:
    def test_buggy_kernel_sysctl_is_global(self):
        kernel, sender, receiver = make_pair(known_bug_kernel("D"))
        kernel.conntrack.sysctl_write_max(sender, netns(sender), 999)
        assert kernel.conntrack.sysctl_read_max(receiver, netns(receiver)) == 999

    def test_fixed_kernel_sysctl_is_per_namespace(self):
        kernel, sender, receiver = make_pair(fixed_kernel())
        kernel.conntrack.sysctl_write_max(sender, netns(sender), 999)
        assert kernel.conntrack.sysctl_read_max(receiver, netns(receiver)) == 65536


class TestKnownBugFConntrackDump:
    def test_buggy_kernel_dumps_foreign_entries(self):
        kernel, sender, receiver = make_pair(known_bug_kernel("F"))
        kernel.conntrack.track(netns(sender), "udp", 1234, 53)
        content = kernel.conntrack.render_proc_conntrack(receiver,
                                                         netns(receiver))
        assert "sport=1234" in content

    def test_fixed_kernel_dumps_own_entries_only(self):
        kernel, sender, receiver = make_pair(fixed_kernel())
        kernel.conntrack.track(netns(sender), "udp", 1234, 53)
        content = kernel.conntrack.render_proc_conntrack(receiver,
                                                         netns(receiver))
        assert "sport=1234" not in content

    def test_timeout_column_ticks_down(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        kernel.conntrack.track(netns(sender), "udp", 1234, 53)
        before = kernel.conntrack.render_proc_conntrack(sender, netns(sender))
        kernel.clock.tick(10_000)  # 10 virtual seconds
        after = kernel.conntrack.render_proc_conntrack(sender, netns(sender))
        assert before != after

    def test_background_churn_depends_on_boot_offset(self):
        from repro.kernel.clock import DEFAULT_BOOT_NS

        counts = []
        for offset in (0, 1, 2):
            kernel = Kernel(bugs=known_bug_kernel("F"))
            kernel.clock.rebase(DEFAULT_BOOT_NS + offset * 1_000_000_000)
            kernel.timer_tick()
            counts.append(len(kernel.conntrack.entries.peek_items()))
        assert len(set(counts)) > 1


class TestKnownBugGUnixDiag:
    def test_buggy_kernel_matches_foreign_sockets(self):
        kernel, sender, receiver = make_pair(known_bug_kernel("G"))
        socket = sock(kernel, sender, AF_UNIX, SOCK_STREAM)
        result = kernel.net.unix_diag_by_ino(receiver, socket.unix_ino)
        assert result["udiag_ino"] == socket.unix_ino

    def test_fixed_kernel_rejects_foreign_sockets(self):
        kernel, sender, receiver = make_pair(fixed_kernel())
        socket = sock(kernel, sender, AF_UNIX, SOCK_STREAM)
        with pytest.raises(SyscallError) as info:
            kernel.net.unix_diag_by_ino(receiver, socket.unix_ino)
        assert info.value.errno == ENOENT

    def test_inode_numbers_are_not_guessable_small_ints(self):
        kernel, sender, __ = make_pair(fixed_kernel())
        socket = sock(kernel, sender, AF_UNIX, SOCK_STREAM)
        assert socket.unix_ino > 1_000_000

    def test_proc_net_unix_lists_own_namespace_only(self):
        kernel, sender, receiver = make_pair(fixed_kernel())
        socket = sock(kernel, sender, AF_UNIX, SOCK_STREAM)
        own = kernel.net.render_proc_unix(sender, netns(sender))
        other = kernel.net.render_proc_unix(receiver, netns(receiver))
        assert str(socket.unix_ino) in own
        assert str(socket.unix_ino) not in other
