"""Unit tests for the test-program model and its text format."""

import pytest

from repro.corpus.program import (
    Call,
    ConstArg,
    ResultArg,
    TestProgram,
    prog,
)


class TestBuilding:
    def test_prog_builder_wires_results(self):
        program = prog(("socket", 2, 1, 6), ("bind", "r0", 0x7F000001, 80))
        assert program.calls[1].args[0] == ResultArg(0)
        assert program.calls[1].args[1] == ConstArg(0x7F000001)

    def test_prog_builder_string_args(self):
        program = prog(("sethostname", "kit-a"),)
        assert program.calls[0].args[0] == ConstArg("kit-a")

    def test_references(self):
        call = Call("bind", (ResultArg(0), ConstArg(1)))
        assert call.references() == [0]

    def test_length_and_iteration(self):
        program = prog(("getpid",), ("getpid",))
        assert len(program) == 2
        assert all(call is not None for call in program)


class TestSerialization:
    def test_roundtrip_simple(self):
        program = prog(("socket", 2, 1, 6), ("bind", "r0", 10, 80))
        assert TestProgram.parse(program.serialize()) == program

    def test_roundtrip_strings(self):
        program = prog(("sethostname", "kit-a"), ("write", "r0", "x y, z"))
        assert TestProgram.parse(program.serialize()) == program

    def test_roundtrip_with_removed_call(self):
        program = prog(("socket", 2, 1, 6), ("getpid",)).without_call(0)
        assert TestProgram.parse(program.serialize()) == program

    def test_serialized_form_is_readable(self):
        program = prog(("socket", 2, 1, 6),)
        assert program.serialize() == "r0 = socket(0x2, 0x1, 0x6)"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            TestProgram.parse("not a call at all!")

    def test_parse_rejects_bad_argument(self):
        with pytest.raises(ValueError):
            TestProgram.parse("socket(banana)")

    def test_parse_handles_quoted_commas(self):
        program = TestProgram.parse('write(r0, "a,b")')
        assert program.calls[0].args[1] == ConstArg("a,b")

    def test_parse_negative_numbers(self):
        program = TestProgram.parse("setpriority(0x0, 0x0, -5)")
        assert program.calls[0].args[2] == ConstArg(-5)


class TestHashing:
    def test_hash_is_stable(self):
        program = prog(("getpid",),)
        assert program.hash_hex == prog(("getpid",),).hash_hex

    def test_hash_distinguishes_programs(self):
        assert prog(("getpid",),).hash_hex != prog(("gethostname",),).hash_hex

    def test_equality_and_set_membership(self):
        a = prog(("getpid",),)
        b = prog(("getpid",),)
        assert a == b
        assert len({a, b}) == 1


class TestWithoutCall:
    def test_leaves_a_hole(self):
        program = prog(("socket", 2, 1, 6), ("getpid",)).without_call(0)
        assert program.calls[0] is None
        assert program.calls[1] is not None

    def test_preserves_result_numbering(self):
        program = prog(("socket", 2, 1, 6), ("socket", 2, 2, 17),
                       ("bind", "r1", 10, 80))
        removed = program.without_call(0)
        assert removed.calls[2].args[0] == ResultArg(1)

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            prog(("getpid",),).without_call(5)

    def test_original_is_unchanged(self):
        program = prog(("getpid",), ("getpid",))
        program.without_call(0)
        assert program.calls[0] is not None

    def test_live_call_indices(self):
        program = prog(("getpid",), ("getpid",), ("getpid",)).without_call(1)
        assert program.live_call_indices() == [0, 2]


class TestConcatenate:
    def test_rebases_result_references(self):
        first = prog(("getpid",),)
        second = prog(("socket", 2, 1, 6), ("bind", "r0", 10, 80))
        joined = first.concatenate(second)
        assert joined.calls[2].args[0] == ResultArg(1)

    def test_preserves_holes(self):
        first = prog(("getpid",),)
        second = prog(("getpid",), ("getpid",)).without_call(0)
        joined = first.concatenate(second)
        assert joined.calls[1] is None

    def test_lengths_add(self):
        first = prog(("getpid",),)
        second = prog(("getpid",), ("getpid",))
        assert len(first.concatenate(second)) == 3
