"""Streaming corpus generation: determinism, dedup, resume, store."""

from __future__ import annotations

import os

import pytest

from repro.corpus import (
    CorpusWriter,
    CoverageDeduper,
    StreamStats,
    build_corpus,
    iter_corpus,
    load_corpus,
    save_corpus,
    stream_corpus,
    stream_corpus_batches,
)
from repro.corpus.program import prog
from repro.corpus.seeds import seed_list


def _hashes(programs):
    return [p.hash_hex for p in programs]


class TestStreamDeterminism:
    def test_same_seed_same_corpus(self):
        first = _hashes(stream_corpus(80, seed=3))
        second = _hashes(stream_corpus(80, seed=3))
        assert first == second

    def test_different_seeds_differ(self):
        assert _hashes(stream_corpus(80, seed=3)) \
            != _hashes(stream_corpus(80, seed=4))

    def test_build_corpus_is_the_materialized_stream(self):
        assert _hashes(build_corpus(120, seed=2)) \
            == _hashes(stream_corpus(120, seed=2))

    def test_build_corpus_historical_shape(self):
        corpus = build_corpus(200, seed=4)
        assert len(corpus) == 200
        assert len({p.hash_hex for p in corpus}) == 200

    @pytest.mark.parametrize("batch_size", [1, 7, 32, 500])
    def test_batch_size_never_changes_admission(self, batch_size):
        flat = _hashes(stream_corpus(60, seed=5))
        batched = [p.hash_hex
                   for batch in stream_corpus_batches(60, batch_size, seed=5)
                   for p in batch]
        assert flat == batched

    def test_batch_size_never_changes_drop_counts(self):
        results = []
        for batch_size in (1, 13, 64):
            stats = StreamStats()
            for __ in stream_corpus_batches(60, batch_size, seed=5,
                                            deduper=CoverageDeduper(),
                                            stats=stats):
                pass
            results.append((stats.emitted, stats.candidates,
                            stats.duplicate_drops, stats.coverage_drops))
        assert len(set(results)) == 1

    def test_dedup_drop_counts_deterministic(self):
        runs = []
        for __ in range(2):
            stats = StreamStats()
            hashes = _hashes(stream_corpus(100, seed=2,
                                           deduper=CoverageDeduper(),
                                           diversify=True, stats=stats))
            runs.append((hashes, stats.emitted, stats.duplicate_drops,
                         stats.coverage_drops, stats.diversified))
        assert runs[0] == runs[1]

    def test_abandoning_the_stream_early_is_a_prefix(self):
        full = _hashes(stream_corpus(60, seed=5))
        partial = []
        for program in stream_corpus(60, seed=5):
            partial.append(program.hash_hex)
            if len(partial) == 20:
                break
        assert partial == full[:20]

    def test_size_zero_emits_nothing(self):
        assert list(stream_corpus(0, seed=1)) == []


class TestCoverageDeduper:
    def test_drops_exact_static_duplicate(self):
        deduper = CoverageDeduper()
        program = seed_list()[0]
        assert deduper.admits(program)
        # A different program made of the same calls covers the same facts.
        doubled = program.concatenate(program)
        assert doubled.hash_hex != program.hash_hex
        assert not deduper.admits(doubled)

    def test_unknown_syscall_admits_conservatively(self):
        deduper = CoverageDeduper()
        mystery = prog(("not_a_real_syscall",))
        assert deduper.admits(mystery)
        assert deduper.admits(mystery)  # unknown stays unprovable

    def test_dedup_shrinks_but_preserves_admission_order(self):
        plain = _hashes(stream_corpus(100, seed=2))
        deduped = _hashes(stream_corpus(100, seed=2,
                                        deduper=CoverageDeduper()))
        assert len(deduped) < len(plain)
        # Every admitted program appears in the undeduped stream, in order.
        positions = [plain.index(h) for h in deduped if h in plain]
        assert positions == sorted(positions)

    def test_diversifier_only_adds_unused_syscalls(self):
        stats = StreamStats()
        corpus = list(stream_corpus(200, seed=2, deduper=CoverageDeduper(),
                                    diversify=True, stats=stats))
        assert stats.diversified >= 1
        assert stats.emitted == len(corpus)


class TestCorpusWriterResume:
    def test_interrupted_run_resumes_byte_identical(self, tmp_path):
        clean_dir = str(tmp_path / "clean")
        resumed_dir = str(tmp_path / "resumed")
        # Uninterrupted reference run.
        with CorpusWriter(clean_dir) as writer:
            for program in stream_corpus(50, seed=6):
                writer.add(program)
        # Interrupted run: stop after 17 programs, then resume.
        with CorpusWriter(resumed_dir) as writer:
            for i, program in enumerate(stream_corpus(50, seed=6)):
                if i == 17:
                    break
                writer.add(program)
        with CorpusWriter(resumed_dir) as writer:
            for program in stream_corpus(50, seed=6):
                writer.add(program)
            assert writer.skipped == 17
        assert sorted(os.listdir(clean_dir)) == sorted(os.listdir(resumed_dir))
        for name in os.listdir(clean_dir):
            with open(os.path.join(clean_dir, name), "rb") as a, \
                    open(os.path.join(resumed_dir, name), "rb") as b:
                assert a.read() == b.read(), name

    def test_writer_directory_loads_like_save_corpus(self, tmp_path):
        saved = str(tmp_path / "saved")
        streamed = str(tmp_path / "streamed")
        corpus = build_corpus(30, seed=7)
        save_corpus(saved, corpus)
        with CorpusWriter(streamed) as writer:
            for program in corpus:
                writer.add(program)
            assert writer.count == writer.added == 30
        for name in os.listdir(saved):
            with open(os.path.join(saved, name), "rb") as a, \
                    open(os.path.join(streamed, name), "rb") as b:
                assert a.read() == b.read(), name
        assert _hashes(load_corpus(streamed).programs) == _hashes(corpus)

    def test_add_reports_duplicates(self, tmp_path):
        program = seed_list()[0]
        with CorpusWriter(str(tmp_path / "c")) as writer:
            assert writer.add(program)
            assert not writer.add(program)
            assert writer.added == 1 and writer.skipped == 1


class TestStreamingLoad:
    def test_iter_corpus_streams_in_index_order(self, tmp_path):
        directory = str(tmp_path / "c")
        corpus = build_corpus(20, seed=8)
        save_corpus(directory, corpus)
        assert _hashes(iter_corpus(directory)) == _hashes(corpus)

    def test_corrupt_entry_skipped_and_reported(self, tmp_path):
        directory = str(tmp_path / "c")
        corpus = build_corpus(10, seed=8)
        save_corpus(directory, corpus)
        victim = corpus[3].hash_hex + ".prog"
        with open(os.path.join(directory, victim), "w") as handle:
            handle.write("this is not a program\n")
        report = load_corpus(directory)
        assert len(report.programs) == 9
        assert [name for name, __ in report.errors] == [victim]
        assert not report.ok

    def test_hash_mismatch_reported(self, tmp_path):
        directory = str(tmp_path / "c")
        save_corpus(directory, build_corpus(5, seed=8))
        other = build_corpus(6, seed=9)[-1]
        victim = sorted(os.listdir(directory))[0]
        if victim == "index.txt":
            victim = sorted(os.listdir(directory))[1]
        with open(os.path.join(directory, victim), "w") as handle:
            handle.write(other.serialize() + "\n")
        report = load_corpus(directory)
        assert any("hash" in msg for __, msg in report.errors)

    def test_missing_directory_is_an_error_entry_not_a_raise(self, tmp_path):
        report = load_corpus(str(tmp_path / "nope"))
        assert report.programs == []
        assert len(report.errors) == 1
        assert not report.ok
