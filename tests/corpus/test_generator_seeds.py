"""Unit tests for the corpus generator and the seed programs."""

import pytest

from repro.corpus.generator import ProgramGenerator, build_corpus
from repro.corpus.program import ConstArg, ResultArg, TestProgram
from repro.corpus.seeds import seed_list, seed_programs
from repro.kernel import Kernel, linux_5_13
from repro.kernel.syscalls import DECLS
from repro.vm import Machine, MachineConfig


class TestGenerator:
    def test_deterministic_given_seed(self):
        first = [ProgramGenerator(seed=5).generate() for __ in range(10)]
        second = [ProgramGenerator(seed=5).generate() for __ in range(10)]
        assert first == second

    def test_different_seeds_differ(self):
        a = [ProgramGenerator(seed=1).generate() for __ in range(5)]
        b = [ProgramGenerator(seed=2).generate() for __ in range(5)]
        assert a != b

    def test_generated_calls_are_declared(self):
        generator = ProgramGenerator(seed=3)
        for __ in range(50):
            for call in generator.generate():
                assert call.name in DECLS

    def test_generated_arity_matches_decls(self):
        generator = ProgramGenerator(seed=4)
        for __ in range(50):
            for call in generator.generate():
                assert len(call.args) == len(DECLS.get(call.name).args)

    def test_result_references_point_backwards(self):
        generator = ProgramGenerator(seed=6)
        for __ in range(100):
            program = generator.generate()
            for index, call in enumerate(program.calls):
                for ref in call.references():
                    assert ref < index

    def test_result_references_point_at_compatible_producers(self):
        generator = ProgramGenerator(seed=7)
        for __ in range(100):
            program = generator.generate()
            for call in program.calls:
                decl = DECLS.get(call.name)
                for spec, arg in zip(decl.args, call.args):
                    if spec.kind in ("fd", "res") and isinstance(arg, ResultArg):
                        producer = DECLS.get(program.calls[arg.index].name)
                        assert producer.ret_resource is not None

    def test_mutation_produces_valid_programs(self):
        generator = ProgramGenerator(seed=8)
        program = generator.generate(length=4)
        for __ in range(30):
            program = generator.mutate(program)
            for call in program.calls:
                if call is not None:
                    assert call.name in DECLS

    def test_explicit_length_respected(self):
        generator = ProgramGenerator(seed=9)
        # Resource synthesis may insert producer calls, so length is a floor.
        assert len(generator.generate(length=3)) >= 3


class TestBuildCorpus:
    def test_deterministic(self):
        assert build_corpus(50, seed=1) == build_corpus(50, seed=1)

    def test_contains_seeds_first(self):
        corpus = build_corpus(100, seed=1)
        seeds = seed_list()
        assert corpus[:len(seeds)] == seeds

    def test_no_duplicates(self):
        corpus = build_corpus(150, seed=2)
        assert len({p.hash_hex for p in corpus}) == len(corpus)

    def test_without_seeds(self):
        corpus = build_corpus(30, seed=3, include_seeds=False)
        seeds = set(seed_list())
        assert len(corpus) == 30
        assert not any(p in seeds for p in corpus[:5])

    def test_reaches_requested_size(self):
        assert len(build_corpus(200, seed=4)) == 200


class TestSeeds:
    def test_seed_names_are_unique_programs(self):
        seeds = seed_programs()
        hashes = [p.hash_hex for p in seeds.values()]
        assert len(set(hashes)) == len(hashes)

    def test_seed_coverage_of_bug_surfaces(self):
        seeds = seed_programs()
        for required in ("packet_socket", "read_ptype",
                         "flowlabel_register_exclusive", "flowlabel_send",
                         "flowlabel_connect", "rds_bind", "read_sockstat",
                         "read_protocols", "socket_cookie", "sctp_assoc",
                         "prio_set_user", "prio_get", "netdev_add",
                         "uevent_listen", "ipvs_add", "read_ip_vs",
                         "conntrack_max_write", "conntrack_max_read",
                         "tmp_write", "iouring_tmp_list"):
            assert required in seeds, required

    @pytest.mark.parametrize("name", sorted(seed_programs()))
    def test_every_seed_executes_without_harness_errors(self, name,
                                                        machine_513):
        """Seeds may return errnos but must never crash the executor."""
        machine_513.reset()
        result = machine_513.run("receiver", seed_programs()[name])
        assert len(result.records) == len(seed_programs()[name])

    def test_sender_side_seeds_succeed(self, machine_513):
        """The bug-trigger seeds must actually succeed syscall-by-syscall."""
        seeds = seed_programs()
        for name in ("packet_socket", "flowlabel_register_exclusive",
                     "rds_bind", "tcp_socket", "socket_cookie", "sctp_assoc",
                     "netdev_add", "ipvs_add", "conntrack_max_write",
                     "msgq_stat", "crypto_take_ref"):
            machine_513.reset()
            result = machine_513.run("sender", seeds[name])
            for record in result.live_records():
                assert record.ok, (name, record)
