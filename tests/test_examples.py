"""Every example script must run clean end to end.

Examples are user-facing API documentation; this keeps them from rotting
as the library evolves.  Each runs in a subprocess (its own interpreter,
like a user would) and must exit 0 with its headline output present.
"""

import os
import subprocess
import sys

import pytest

_EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples")

#: script -> a fragment its output must contain.
EXPECTED_OUTPUT = {
    "quickstart.py": "bugs found (9):",
    "known_bug_regression.py": "5/7 scenarios detected",
    "strategy_comparison.py": "Effectiveness",
    "custom_namespace_audit.py": "namespace bugs witnessed",
    "jump_label_ablation.py": "missed",
    "bounds_extension.py": "envelope violation",
    "patch_regression_gate.py": "gate PASSED",
    "transient_interference.py": "transient-only",
}


def test_every_example_is_covered():
    scripts = sorted(name for name in os.listdir(_EXAMPLES_DIR)
                     if name.endswith(".py"))
    assert scripts == sorted(EXPECTED_OUTPUT), \
        "update EXPECTED_OUTPUT when adding examples"


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs_clean(script):
    process = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES_DIR, script)],
        capture_output=True, text=True, timeout=300,
    )
    assert process.returncode == 0, process.stderr[-2000:]
    assert EXPECTED_OUTPUT[script] in process.stdout
    assert not process.stderr.strip()
