"""Shared fixtures and helpers for the KIT reproduction test suite."""

from __future__ import annotations

import pytest

from repro.kernel import Kernel, KernelConfig, fixed_kernel, linux_5_13
from repro.kernel.errno import SyscallError
from repro.kernel.namespaces import ALL_NAMESPACE_FLAGS
from repro.vm import Machine, MachineConfig


class SyscallHarness:
    """Terse syscall invocation against a kernel, errno-aware."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel

    def __call__(self, task, name, *args):
        """Invoke; returns (retval, details); errors return (-errno, {})."""
        try:
            result = self.kernel.syscall(task, name, list(args))
            return result.retval, result.details
        except SyscallError as error:
            return -error.errno, {}

    def must(self, task, name, *args):
        """Invoke; raises on errno; returns (retval, details)."""
        result = self.kernel.syscall(task, name, list(args))
        return result.retval, result.details


@pytest.fixture
def kernel_fixed() -> Kernel:
    """A fully-patched kernel."""
    return Kernel(bugs=fixed_kernel())


@pytest.fixture
def kernel_513() -> Kernel:
    """Linux 5.13 with the nine Table-2 bugs."""
    return Kernel(bugs=linux_5_13())


@pytest.fixture
def two_containers(kernel_513):
    """(kernel, sender_task, receiver_task), each fully unshared."""
    sender = kernel_513.spawn_task(comm="sender")
    receiver = kernel_513.spawn_task(comm="receiver")
    kernel_513.unshare(sender, ALL_NAMESPACE_FLAGS)
    kernel_513.unshare(receiver, ALL_NAMESPACE_FLAGS)
    return kernel_513, sender, receiver


@pytest.fixture
def two_containers_fixed(kernel_fixed):
    sender = kernel_fixed.spawn_task(comm="sender")
    receiver = kernel_fixed.spawn_task(comm="receiver")
    kernel_fixed.unshare(sender, ALL_NAMESPACE_FLAGS)
    kernel_fixed.unshare(receiver, ALL_NAMESPACE_FLAGS)
    return kernel_fixed, sender, receiver


@pytest.fixture
def sc(kernel_513) -> SyscallHarness:
    return SyscallHarness(kernel_513)


@pytest.fixture(scope="session")
def machine_513() -> Machine:
    """Session-shared buggy machine; tests must reset() before use."""
    return Machine(MachineConfig(bugs=linux_5_13()))


@pytest.fixture(scope="session")
def machine_fixed() -> Machine:
    """Session-shared patched machine; tests must reset() before use."""
    return Machine(MachineConfig(bugs=fixed_kernel()))
