"""Multiprocess shard pool: work stealing, supervision, determinism
(ISSUE 6 tentpole, satellites 3 and 4).

Mirrors the thread-cluster contracts of
``tests/faults/test_cluster_recovery.py`` across real forked processes.
Process-mode fault schedules key on ``job_id + attempt * 1_000_003``
(no per-process counter stream — forked children inherit the parent's
counters, so occurrence indexing is what keeps scheduled faults firing
exactly once across shards); ``schedule={SITE: {0}}`` therefore means
"while running job 0, attempt 0".
"""

from __future__ import annotations

import time

import pytest

from repro.faults.plan import (
    SITE_RESULT_DROP,
    SITE_WORKER_CRASH,
    SITE_WORKER_KILL,
    FaultPlan,
)
from repro.kernel import linux_5_13
from repro.vm import MachineConfig, Machine, fork_available, run_sharded
from repro.vm.shardpool import _ATTEMPT_STRIDE

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process shards require fork")

CONFIG = MachineConfig(bugs=linux_5_13())


def test_results_merge_in_job_order():
    report = run_sharded(CONFIG, list(range(8)),
                         lambda machine, payload: payload + 100, workers=2)
    assert [r.outcome for r in report.results] == [i + 100 for i in range(8)]
    assert [r.job_id for r in report.results] == list(range(8))
    assert report.rounds == 1
    assert report.shards_spawned == 2 and report.shards_died == 0


def test_pool_never_exceeds_job_count():
    report = run_sharded(CONFIG, [1, 2], lambda machine, payload: payload,
                         workers=8)
    assert report.shards_spawned == 2
    assert [r.outcome for r in report.results] == [1, 2]


def test_empty_payloads_short_circuit():
    report = run_sharded(CONFIG, [], lambda machine, payload: payload,
                         workers=2)
    assert report.results == [] and report.rounds == 0


def test_idle_shard_steals_from_loaded_victim():
    """Half of shard 0's slow tail migrates to shard 1 once it drains
    its own fast range; the merged results stay in job order."""

    def skewed(machine, payload):
        if payload < 6:
            time.sleep(0.05)
        return payload * 2

    report = run_sharded(CONFIG, list(range(12)), skewed, workers=2)
    assert [r.outcome for r in report.results] == [i * 2 for i in range(12)]
    assert report.steals_attempted >= 1
    assert report.steals_granted >= 1
    assert report.jobs_stolen >= 1
    assert report.shards_died == 0


def test_stolen_ranges_preserve_result_identity():
    """Satellite 4: stealing redistributes *where* jobs run, never what
    they produce — byte-identical outcomes to the no-steal pool."""

    def skewed(machine, payload):
        if payload % 3 == 0:
            time.sleep(0.02)
        return (payload, payload * payload)

    single = run_sharded(CONFIG, list(range(10)), skewed, workers=1)
    pooled = run_sharded(CONFIG, list(range(10)), skewed, workers=3)
    assert [r.outcome for r in single.results] \
        == [r.outcome for r in pooled.results]
    assert single.steals_granted == 0  # a lone shard has nobody to rob


def test_crash_schedule_recovery():
    plan = FaultPlan(seed=0, schedule={SITE_WORKER_CRASH: {0}})
    dead = []
    report = run_sharded(CONFIG, list(range(4)),
                         lambda machine, payload: payload + 1, workers=1,
                         faults=plan, max_job_retries=1,
                         on_worker_death=dead.append)
    assert [r.outcome for r in report.results] == [1, 2, 3, 4]
    assert dead == [0]
    assert report.shards_died == 1 and report.rounds == 2
    # The replacement shard got a fresh worker id (ids never recycle).
    assert all(r.worker != 0 for r in report.results)
    assert plan.stats.recovered.get(SITE_WORKER_CRASH) == 1
    assert plan.stats.accounted()


def test_kill_schedule_recovery_and_accounting():
    """worker.kill SIGKILLs the shard mid-job; the supervisor charges
    exactly the announced job and keeps the campaign ledger balanced
    (the dead process's own counters are lost with it)."""
    plan = FaultPlan(seed=0, schedule={SITE_WORKER_KILL: {1}})
    dead = []
    report = run_sharded(CONFIG, list(range(4)),
                         lambda machine, payload: payload * 10, workers=2,
                         faults=plan, max_job_retries=1,
                         on_worker_death=dead.append)
    assert [r.outcome for r in report.results] == [0, 10, 20, 30]
    assert len(dead) == 1
    assert report.shards_died == 1
    assert plan.stats.injected.get(SITE_WORKER_KILL) == 1
    assert plan.stats.recovered.get(SITE_WORKER_KILL) == 1
    assert plan.stats.accounted()


def test_retried_attempt_draws_a_fresh_fault_decision():
    # Schedule the crash for job 0 on attempt 0 AND attempt 1: both
    # occurrences fire, the third attempt completes.
    plan = FaultPlan(seed=0, schedule={
        SITE_WORKER_CRASH: {0, _ATTEMPT_STRIDE}})
    report = run_sharded(CONFIG, [7], lambda machine, payload: payload,
                         workers=1, faults=plan, max_job_retries=2)
    assert report.results[0].outcome == 7
    assert report.shards_died == 2 and report.rounds == 3
    assert plan.stats.recovered.get(SITE_WORKER_CRASH) == 2
    assert plan.stats.accounted()


def test_death_with_no_retries_raises_by_default():
    plan = FaultPlan(seed=0, schedule={SITE_WORKER_CRASH: {0}})
    with pytest.raises(RuntimeError) as excinfo:
        run_sharded(CONFIG, list(range(3)),
                    lambda machine, payload: payload,
                    workers=1, faults=plan, max_job_retries=0)
    assert "unfinished job(s)" in str(excinfo.value)
    assert plan.stats.accounted()


def test_kill_storm_degrades_gracefully_when_not_strict():
    plan = FaultPlan(seed=0, rates={SITE_WORKER_KILL: 1.0})
    report = run_sharded(CONFIG, ["only-job"],
                         lambda machine, payload: payload, workers=1,
                         faults=plan, max_job_retries=2, strict=False)
    assert len(report.results) == 1
    assert report.results[0].outcome is None
    assert "retries exhausted after 3 failed attempt(s)" \
        in report.results[0].error
    assert plan.stats.infra_failed.get(SITE_WORKER_KILL) == 3
    assert plan.stats.accounted()


def test_dropped_result_is_requeued_and_recovered():
    plan = FaultPlan(seed=0, schedule={SITE_RESULT_DROP: {0}})
    report = run_sharded(CONFIG, list(range(3)),
                         lambda machine, payload: payload * 3, workers=1,
                         faults=plan, max_job_retries=1)
    assert [r.outcome for r in report.results] == [0, 3, 6]
    assert plan.stats.recovered.get(SITE_RESULT_DROP) == 1
    assert plan.stats.accounted()


def test_genuine_job_exception_is_not_retried():
    """Retries cover infrastructure faults, not deterministic job bugs;
    a single round proves no retry round ever ran."""

    def runner(machine, payload):
        if payload == 1:
            raise ValueError("deterministic bug")
        return payload

    report = run_sharded(CONFIG, [0, 1, 2], runner, workers=1,
                         faults=FaultPlan(seed=0), max_job_retries=5,
                         strict=False)
    assert report.rounds == 1
    assert "ValueError" in report.results[1].error
    assert report.results[0].outcome == 0
    assert report.results[2].outcome == 2


def test_boot_failure_charges_nothing_until_pool_cannot_boot(tmp_path):
    """A shard that dies *booting* never touched its range: the jobs
    re-queue and the respawned shard (whose boot succeeds) runs them."""
    flag = tmp_path / "boot-failed-once"

    def flaky_boot():
        if not flag.exists():
            flag.write_text("x")
            raise RuntimeError("transient boot failure")
        return Machine(CONFIG)

    report = run_sharded(CONFIG, list(range(3)),
                         lambda machine, payload: payload + 5, workers=1,
                         boot=flaky_boot, max_job_retries=1)
    assert [r.outcome for r in report.results] == [5, 6, 7]
    assert report.rounds == 2 and report.shards_died == 1


def test_pool_that_can_never_boot_raises():
    def broken_boot():
        raise RuntimeError("no machine for you")

    with pytest.raises(RuntimeError) as excinfo:
        run_sharded(CONFIG, list(range(2)),
                    lambda machine, payload: payload, workers=2,
                    boot=broken_boot, max_job_retries=1)
    assert "unfinished job(s)" in str(excinfo.value)
    assert "no machine for you" in str(excinfo.value)


def test_telemetry_hook_collects_from_retired_shards():
    report = run_sharded(CONFIG, list(range(6)),
                         lambda machine, payload: payload, workers=2,
                         telemetry_hook=lambda m: m.cluster_worker_id)
    assert sorted(report.telemetry) == [0, 1]


def test_killed_shard_ships_no_telemetry():
    plan = FaultPlan(seed=0, schedule={SITE_WORKER_KILL: {0}})
    report = run_sharded(CONFIG, list(range(4)),
                         lambda machine, payload: payload, workers=2,
                         faults=plan, max_job_retries=1,
                         telemetry_hook=lambda m: m.cluster_worker_id)
    # Worker 0 was SIGKILLed; only cleanly-retired shards report.
    assert 0 not in report.telemetry
    assert len(report.telemetry) >= 1
