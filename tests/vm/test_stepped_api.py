"""Tests for the step-wise executor API and the public package surface."""

import pytest

import repro
import repro.core
import repro.corpus
import repro.kernel
import repro.vm
from repro.corpus.program import prog
from repro.kernel import Kernel
from repro.vm.executor import Executor, SteppedExecution


@pytest.fixture
def kernel():
    return Kernel()


class TestSteppedExecution:
    def test_step_until_done(self, kernel):
        task = kernel.spawn_task()
        session = SteppedExecution(Executor(kernel, task),
                                   prog(("getpid",), ("gethostname",)))
        assert session.step() and session.position == 1
        assert session.step() and session.done
        assert not session.step()

    def test_result_matches_plain_run(self, kernel):
        program = prog(("socket", 2, 1, 6), ("getsockname", "r0"))
        task_a = kernel.spawn_task()
        plain = Executor(kernel, task_a).run(program)

        fresh = Kernel()
        task_b = fresh.spawn_task()
        session = SteppedExecution(Executor(fresh, task_b), program)
        while session.step():
            pass
        stepped = session.result()
        assert [r.retval for r in plain.live_records()] == \
            [r.retval for r in stepped.live_records()]

    def test_partial_result_snapshot(self, kernel):
        task = kernel.spawn_task()
        session = SteppedExecution(Executor(kernel, task),
                                   prog(("getpid",), ("getpid",)))
        session.step()
        partial = session.result()
        assert len(partial.records) == 1
        session.step()
        assert len(session.result().records) == 2
        # The earlier snapshot is unaffected (defensive copies).
        assert len(partial.records) == 1

    def test_holes_are_stepped_through(self, kernel):
        task = kernel.spawn_task()
        program = prog(("getpid",), ("getpid",)).without_call(0)
        session = SteppedExecution(Executor(kernel, task), program)
        session.step()
        assert session.result().records[0] is None

    def test_interleaving_two_sessions(self, kernel):
        """Two tasks' sessions advance independently on one kernel."""
        first = SteppedExecution(Executor(kernel, kernel.spawn_task()),
                                 prog(("getpid",), ("getpid",)))
        second = SteppedExecution(Executor(kernel, kernel.spawn_task()),
                                  prog(("gethostname",),))
        first.step()
        second.step()
        first.step()
        assert first.done and second.done


class TestPublicApi:
    @pytest.mark.parametrize("module", [repro, repro.core, repro.corpus,
                                        repro.kernel, repro.vm])
    def test_all_names_resolve(self, module):
        for name in module.__all__:
            assert getattr(module, name, None) is not None, \
                f"{module.__name__}.{name} missing"

    def test_top_level_version(self):
        assert repro.__version__

    def test_no_duplicate_exports(self):
        for module in (repro, repro.core, repro.corpus, repro.kernel,
                       repro.vm):
            assert len(module.__all__) == len(set(module.__all__)), \
                module.__name__


class TestProcLoadavgStat:
    def test_loadavg_varies_with_boot_offset(self):
        from repro.kernel.clock import DEFAULT_BOOT_NS

        outputs = set()
        for offset in (0, 1, 2):
            kernel = Kernel()
            kernel.clock.rebase(DEFAULT_BOOT_NS + offset * 10**9)
            task = kernel.spawn_task()
            outputs.add(kernel.procfs.render(task, "loadavg"))
        assert len(outputs) > 1

    def test_stat_tracks_ticks(self, kernel):
        task = kernel.spawn_task()
        before = kernel.procfs.render(task, "stat")
        kernel.timer_tick(10)
        after = kernel.procfs.render(task, "stat")
        assert before != after
