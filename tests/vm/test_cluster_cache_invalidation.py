"""Worker death releases the dead worker's shared-cache entries."""

from __future__ import annotations

import os

import pytest

from repro.core.execution import (
    BaselineCache,
    SenderState,
    SenderStateCache,
)
from repro.core.nondet import NondetStore
from repro.vm.cluster import run_distributed
from repro.vm.executor import ExecutionResult
from repro.vm.machine import MachineConfig
from repro.vm.segments import StateDelta


class TestBaselineCacheOwnership:
    def test_invalidate_owner_drops_only_owned_entries(self):
        cache = BaselineCache()
        cache.put("a", object(), owner=0)
        cache.put("b", object(), owner=1)
        cache.put("c", object())  # in-process, unowned
        assert cache.invalidate_owner(0) == 1
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert cache.get("c") is not None

    def test_first_put_keeps_its_owner(self):
        cache = BaselineCache()
        first = object()
        cache.put("a", first, owner=0)
        cache.put("a", object(), owner=1)  # lost the race: ignored
        assert cache.invalidate_owner(1) == 0
        assert cache.get("a") is first


class TestNondetStoreOwnership:
    def test_invalidate_owner_drops_memory_entries(self):
        store = NondetStore()
        store.put("p1", frozenset({("kernel", "x")}), owner=0)
        store.put("p2", frozenset({("kernel", "y")}), owner=1)
        assert store.invalidate_owner(0) == 1
        assert store.get("p1") is None
        assert store.get("p2") is not None

    def test_invalidate_owner_removes_disk_files(self, tmp_path):
        store = NondetStore(directory=str(tmp_path))
        store.put("p1", frozenset({("kernel", "x")}), owner=0)
        store.put("p2", frozenset({("kernel", "y")}), owner=1)
        files_before = len(os.listdir(tmp_path))
        assert files_before == 2
        assert store.invalidate_owner(0) == 1
        assert len(os.listdir(tmp_path)) == 1
        # A fresh store over the same directory must not resurrect it.
        fresh = NondetStore(directory=str(tmp_path))
        assert fresh.get("p1") is None
        assert fresh.get("p2") is not None


def _sender_entry(size=8):
    return SenderState(StateDelta((), b"x" * size, 0), ExecutionResult([]))


class TestWorkerDeath:
    def test_death_invalidates_owned_entries(self):
        """A worker dying mid-queue triggers on_worker_death, and the
        hook can release everything that worker published."""
        baselines = BaselineCache()
        store = NondetStore()
        sender_states = SenderStateCache()
        baselines.put("preexisting", object())  # unowned: must survive
        sender_states.put("snap", "preexisting", _sender_entry())
        dead_workers = []

        def case_runner(machine, payload):
            owner = machine.cluster_worker_id
            baselines.put(payload, object(), owner=owner)
            store.put(payload, frozenset({("kernel", payload)}), owner=owner)
            sender_states.put("snap", payload, _sender_entry(), owner=owner)
            if payload == "die":
                raise SystemExit("worker crashed")
            return payload

        def on_death(worker_id):
            dead_workers.append(worker_id)
            baselines.invalidate_owner(worker_id)
            store.invalidate_owner(worker_id)
            sender_states.invalidate_owner(worker_id)

        with pytest.raises(RuntimeError) as failure:
            run_distributed(MachineConfig(), ["a", "die", "unreached"],
                            case_runner, workers=1,
                            on_worker_death=on_death)
        assert "SystemExit" in str(failure.value)
        assert "unfinished" in str(failure.value)
        assert dead_workers == [0]
        # Everything the dead worker published is gone...
        assert baselines.get("a") is None
        assert baselines.get("die") is None
        assert store.get("a") is None
        assert store.get("die") is None
        assert sender_states.get("snap", "a") is None
        assert sender_states.get("snap", "die") is None
        # ...while unowned entries survive (a replacement worker may
        # have published entries of its own — those are legitimate).
        assert baselines.get("preexisting") is not None
        assert sender_states.get("snap", "preexisting") is not None
        assert 0 not in sender_states.owner_tags()

    def test_clean_run_never_calls_the_hook(self):
        calls = []
        results = run_distributed(
            MachineConfig(), ["a", "b", "c"],
            lambda machine, payload: payload, workers=2,
            on_worker_death=calls.append)
        assert [r.outcome for r in results] == ["a", "b", "c"]
        assert calls == []
