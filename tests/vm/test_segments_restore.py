"""Segmented snapshot engine: consistency, dirty tracking, telemetry.

The load-bearing property is at the top: for every seed program and
every Table-3 bug kernel, restoring only dirty segments in place lands
on *byte-identical* kernel state to deserializing the full snapshot.
Identity is judged by :func:`repro.vm.state_fingerprint`, the canonical
serialization both the consistency check and these tests share.
"""

from __future__ import annotations

import pytest

from repro.core.known_bugs import SCENARIOS, TABLE3_ROWS, scenario_machine_config
from repro.corpus.seeds import seed_programs
from repro.kernel import linux_5_13
from repro.vm import (
    Machine,
    MachineConfig,
    MachineStats,
    RestoreConsistencyError,
    state_fingerprint,
)
from repro.vm.machine import RECEIVER, SENDER

CONFIGS = {"5.13": MachineConfig(bugs=linux_5_13())}
CONFIGS.update({row: scenario_machine_config(SCENARIOS[row])
                for row in TABLE3_ROWS})


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_segmented_restore_matches_full_restore(config_name):
    """Property: segmented reset ≡ full restore, for all seed programs."""
    machine = Machine(CONFIGS[config_name])
    assert machine.snapshot.image is not None
    reference = state_fingerprint(machine.snapshot.restore())
    # The freshly-booted machine already matches the snapshot.
    assert state_fingerprint(machine.kernel) == reference

    for name, program in sorted(seed_programs().items()):
        machine.reset()
        machine.run(SENDER, program)
        machine.run(RECEIVER, program)
        machine.reset()
        assert state_fingerprint(machine.kernel) == reference, \
            f"divergence after seed {name!r} on config {config_name}"

    # Boot-offset rebases (the §4.3.2 re-run mechanism) must also agree.
    offset_ns = machine.kernel.clock.boot_offset_ns + 7_000_000_000
    machine.reset(boot_offset_ns=offset_ns)
    assert state_fingerprint(machine.kernel) == \
        state_fingerprint(machine.snapshot.restore(boot_offset_ns=offset_ns))


def test_verify_catches_untracked_mutation():
    """A mutation the dirty tracker never saw fails the consistency check."""
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    image = machine.snapshot.image
    # Bypass every kernel API: poke a plain list on a snapshotted object.
    machine.kernel.init_mnt_ns.mounts.append("bogus-mount")
    machine.reset()
    with pytest.raises(RestoreConsistencyError) as excinfo:
        image.verify()
    assert excinfo.value.offenders


def test_verify_passes_after_ordinary_runs():
    machine = Machine(MachineConfig(bugs=linux_5_13(), verify_restore=True))
    seeds = seed_programs()
    for program_name in ("udp_send", "read_sockstat", "mount_and_stat"):
        machine.reset()  # verifies on every reset (verify_restore=True)
        machine.run(SENDER, seeds[program_name])
        machine.run(RECEIVER, seeds[program_name])
    machine.reset()
    assert machine.stats.segmented_restores >= 4


def test_full_restore_config_disables_segmentation():
    machine = Machine(MachineConfig(bugs=linux_5_13(), full_restore=True))
    assert machine.snapshot.image is None
    assert machine.snapshot.segment_count == 0
    assert machine.snapshot.segmented_bytes == 0
    before = machine.kernel
    machine.reset()
    assert machine.kernel is not before  # fresh deserialization each time
    assert machine.stats.full_restores == 2  # boot reset + explicit reset
    assert machine.stats.segmented_restores == 0


def test_segmented_machine_preserves_kernel_identity():
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    kernel = machine.kernel
    task = machine.receiver_task
    machine.reset()
    assert machine.kernel is kernel
    assert machine.receiver_task is task  # in-place restore keeps roots


def test_reset_restores_only_dirty_segments():
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    total = machine.snapshot.segment_count
    assert total > 10
    machine.reset()
    machine.run(RECEIVER, seed_programs()["read_uptime"])
    before = machine.stats.copy()
    machine.reset()
    delta = machine.stats.since(before)
    assert delta.segmented_restores == 1
    assert 0 < delta.segments_restored < total
    assert delta.segments_restored + delta.segments_skipped == total


def test_machine_stats_merge_and_since():
    a = MachineStats(full_restores=1, segmented_restores=2,
                     segments_restored=10, segments_skipped=30,
                     restore_seconds=0.5)
    b = MachineStats(segmented_restores=3, segments_restored=5,
                     segments_skipped=15, restore_seconds=0.25)
    a.merge(b)
    assert a.restores == 6
    assert a.segments_restored == 15 and a.segments_skipped == 45
    assert a.restore_seconds == pytest.approx(0.75)
    delta = a.since(MachineStats(full_restores=1, segmented_restores=2,
                                 segments_restored=10, segments_skipped=30,
                                 restore_seconds=0.5))
    assert delta.segmented_restores == 3 and delta.full_restores == 0
    assert delta.restore_seconds == pytest.approx(0.25)
