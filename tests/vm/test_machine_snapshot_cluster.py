"""Unit tests for machines, snapshots, and the distributed cluster."""

import pytest

from repro.corpus.program import prog
from repro.corpus.seeds import seed_programs
from repro.kernel import linux_5_13
from repro.kernel.clock import DEFAULT_BOOT_NS
from repro.kernel.namespaces import NamespaceType
from repro.vm import (
    ContainerConfig,
    Machine,
    MachineConfig,
    Snapshot,
    run_distributed,
)
from repro.vm.cluster import ClusterServer, ClusterWorker


class TestSnapshot:
    def test_restore_is_isolated_from_original(self, machine_513):
        machine_513.reset()
        kernel_a = machine_513.snapshot.restore()
        kernel_b = machine_513.snapshot.restore()
        task_a = kernel_a.tasks.all_tasks()[0]
        kernel_a.sched.sys_setpriority(task_a, 0, 0, 10)
        task_b = kernel_b.tasks.all_tasks()[0]
        assert kernel_b.sched.sys_getpriority(task_b, 0, 0) == 20

    def test_restore_with_boot_offset_rebases_clock(self, machine_513):
        kernel = machine_513.snapshot.restore(boot_offset_ns=123)
        assert kernel.clock.boot_offset_ns == 123

    def test_restored_kernel_has_no_tracer(self, machine_513):
        from repro.kernel import KernelTracer

        machine_513.reset()
        machine_513.attach_tracer(KernelTracer())
        blob = Snapshot.take(machine_513.kernel)
        assert blob.restore().tracer is None
        machine_513.attach_tracer(None)

    def test_size_is_reasonable(self, machine_513):
        # Snapshots should stay small (fast restores are the §6.5 lever).
        assert machine_513.snapshot.size_bytes < 200_000


class TestMachine:
    def test_containers_have_fresh_namespaces(self, machine_513):
        machine_513.reset()
        sender = machine_513.sender_task
        receiver = machine_513.receiver_task
        for ns_type in NamespaceType:
            assert not sender.nsproxy.shares_with(receiver.nsproxy, ns_type)

    def test_private_tmp_mounted(self, machine_513):
        machine_513.reset()
        kernel = machine_513.kernel
        sender_tmp = machine_513.sender_task.nsproxy.get(
            NamespaceType.MNT).find_mount("/tmp").sb
        host_tmp = kernel.init_mnt_ns.find_mount("/tmp").sb
        assert sender_tmp is not host_tmp

    def test_host_mount_ns_variant_shares_tmp(self):
        config = MachineConfig(
            sender=ContainerConfig("sender").host_mount_ns())
        machine = Machine(config)
        kernel = machine.kernel
        sender_ns = machine.sender_task.nsproxy.get(NamespaceType.MNT)
        assert sender_ns is kernel.init_mnt_ns

    def test_reset_restores_pristine_state(self, machine_513):
        machine_513.reset()
        machine_513.run("sender", prog(("socket", 17, 3, 3),))
        machine_513.reset()
        result = machine_513.run("receiver", seed_programs()["read_ptype"])
        assert "packet_rcv" not in result.records[1].details["data"]

    def test_identical_runs_produce_identical_records(self, machine_513):
        program = seed_programs()["read_sockstat"]
        machine_513.reset()
        first = machine_513.run("receiver", program)
        machine_513.reset()
        second = machine_513.run("receiver", program)
        assert first.records[1].details == second.records[1].details

    def test_unknown_container_rejected(self, machine_513):
        with pytest.raises(ValueError):
            machine_513.task_for("thirdparty")

    def test_boot_offset_changes_time_dependent_results(self, machine_513):
        program = seed_programs()["read_uptime"]
        machine_513.reset(boot_offset_ns=DEFAULT_BOOT_NS)
        first = machine_513.run("receiver", program)
        machine_513.reset(boot_offset_ns=DEFAULT_BOOT_NS + 7 * 10**9)
        second = machine_513.run("receiver", program)
        assert first.records[1].details != second.records[1].details


class TestCluster:
    def test_results_ordered_by_job_id(self):
        config = MachineConfig(bugs=linux_5_13())
        payloads = [prog(("getpid",),) for __ in range(8)]

        def runner(machine, program):
            machine.reset()
            return machine.run("receiver", program).records[0].retval

        results = run_distributed(config, payloads, runner, workers=3)
        assert [r.job_id for r in results] == list(range(8))
        assert all(r.error is None for r in results)

    def test_worker_errors_are_reported_not_raised(self):
        config = MachineConfig()

        def runner(machine, payload):
            raise RuntimeError("boom")

        results = run_distributed(config, [1, 2], runner, workers=2)
        assert all("boom" in r.error for r in results)

    def test_workers_share_the_job_queue(self):
        config = MachineConfig()
        seen_workers = set()

        def runner(machine, payload):
            return payload * 2

        results = run_distributed(config, list(range(10)), runner, workers=2)
        assert [r.outcome for r in results] == [i * 2 for i in range(10)]
        seen_workers = {r.worker for r in results}
        assert seen_workers <= {0, 1}

    def test_server_protocol(self):
        server = ClusterServer(MachineConfig(), ["a", "b"])
        assert server.job_count == 2
        assert server.fetch_machine_config() is not None
        job = server.fetch_job()
        assert job.payload == "a"
        server.fetch_job()
        assert server.fetch_job() is None

    def test_single_worker_mode(self):
        config = MachineConfig()
        results = run_distributed(config, [1], lambda m, p: p, workers=1)
        assert results[0].outcome == 1
