"""Unit tests for the test-program executor."""

import pytest

from repro.corpus.program import prog
from repro.kernel import Kernel, KernelTracer
from repro.kernel.errno import EBADF, ENOSYS
from repro.vm.executor import Executor


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def executor(kernel):
    return Executor(kernel, kernel.spawn_task())


class TestBasicExecution:
    def test_records_one_per_call(self, executor):
        result = executor.run(prog(("getpid",), ("gethostname",)))
        assert [r.name for r in result.records] == ["getpid", "gethostname"]

    def test_successful_call_has_zero_errno(self, executor):
        (record,) = executor.run(prog(("getpid",),)).records
        assert record.ok and record.errno == 0

    def test_failed_call_records_errno(self, executor):
        (record,) = executor.run(prog(("read", 99, 100),)).records
        assert record.retval == -1
        assert record.errno == EBADF

    def test_unknown_syscall_is_enosys_record(self, executor):
        (record,) = executor.run(prog(("frobnicate",),)).records
        assert record.errno == ENOSYS

    def test_details_captured(self, executor):
        result = executor.run(prog(
            ("open", "/etc/hostname", 0),
            ("read", "r0", 100),
        ))
        assert result.records[1].details["data"] == "kit-vm\n"

    def test_execution_advances_virtual_time(self, executor, kernel):
        before = kernel.clock.ticks
        executor.run(prog(("getpid",), ("getpid",)))
        # One jittered timer interrupt (1-3 ticks) per syscall.
        assert before + 2 <= kernel.clock.ticks <= before + 6


class TestResultResolution:
    def test_result_arg_resolves_to_retval(self, executor):
        result = executor.run(prog(
            ("open", "/etc/hostname", 0),
            ("fstat", "r0"),
        ))
        assert result.records[1].ok

    def test_failed_result_resolves_to_zero(self, executor):
        result = executor.run(prog(
            ("open", "/nonexistent", 0),
            ("fstat", "r0"),
        ))
        assert result.records[1].args == (0,)
        assert result.records[1].errno == EBADF

    def test_removed_result_resolves_to_zero(self, executor):
        program = prog(
            ("open", "/etc/hostname", 0),
            ("fstat", "r0"),
        ).without_call(0)
        result = executor.run(program)
        assert result.records[0] is None
        assert result.records[1].args == (0,)

    def test_forward_reference_resolves_to_zero(self, executor):
        (record,) = executor.run(prog(("fstat", "r7"),)).records
        assert record.args == (0,)


class TestResourceKinds:
    def test_ret_kind_from_installed_object(self, executor):
        result = executor.run(prog(("socket", 2, 1, 6),))
        assert result.records[0].ret_kind == "sock_tcp"

    def test_arg_kind_from_fd_table(self, executor):
        result = executor.run(prog(
            ("open", "/proc/net/sockstat", 0),
            ("pread64", "r0", 100, 0),
        ))
        assert result.records[1].arg_kinds == {"fd": "fd_proc_net"}

    def test_subject_is_path_for_files(self, executor):
        result = executor.run(prog(
            ("open", "/proc/net/sockstat", 0),
            ("pread64", "r0", 100, 0),
        ))
        assert result.records[1].subject() == "/proc/net/sockstat"

    def test_static_res_kind_from_decl(self, executor):
        result = executor.run(prog(
            ("msgget", 0, 0o1000),
            ("msgctl", "r0", 2),
        ))
        assert result.records[1].arg_kinds == {"msqid": "msqid"}

    def test_failed_producer_has_no_ret_kind(self, executor):
        result = executor.run(prog(("open", "/nope", 0),))
        assert result.records[0].ret_kind is None

    def test_resource_kinds_union(self, executor):
        result = executor.run(prog(("socket", 2, 1, 6),))
        assert result.records[0].resource_kinds() == ["sock_tcp"]


class TestProfilingMode:
    def test_accesses_collected_per_call(self, kernel):
        task = kernel.spawn_task()
        kernel.attach_tracer(KernelTracer())
        executor = Executor(kernel, task)
        result = executor.run(prog(("socket", 2, 1, 6), ("getpid",)),
                              profile=True)
        assert result.accesses is not None
        assert len(result.accesses) == 2
        assert len(result.accesses[0]) > 0  # socket touches counters

    def test_accesses_have_call_stacks(self, kernel):
        task = kernel.spawn_task()
        kernel.attach_tracer(KernelTracer())
        executor = Executor(kernel, task)
        result = executor.run(prog(("socket", 2, 1, 6),), profile=True)
        assert any(stack for __, stack in result.accesses[0])

    def test_no_accesses_without_profile_flag(self, kernel):
        task = kernel.spawn_task()
        kernel.attach_tracer(KernelTracer())
        executor = Executor(kernel, task)
        result = executor.run(prog(("socket", 2, 1, 6),))
        assert result.accesses is None

    def test_removed_calls_have_none_accesses(self, kernel):
        task = kernel.spawn_task()
        kernel.attach_tracer(KernelTracer())
        executor = Executor(kernel, task)
        program = prog(("getpid",), ("getpid",)).without_call(0)
        result = executor.run(program, profile=True)
        assert result.accesses[0] is None
        assert result.accesses[1] == [] or result.accesses[1] is not None
