"""affinity_order: sender-major batching with a stable tie-break."""

from __future__ import annotations

import random

from repro.vm.cluster import affinity_order


def test_returns_a_permutation():
    keys = [("s2", "r1"), ("s1", "r9"), ("s2", "r0"), ("s1", "r1")]
    order = affinity_order(keys)
    assert sorted(order) == list(range(len(keys)))


def test_groups_by_sender_then_receiver():
    keys = [("s2", "r1"), ("s1", "r9"), ("s2", "r0"), ("s1", "r1")]
    order = affinity_order(keys)
    assert [keys[i] for i in order] == [
        ("s1", "r1"), ("s1", "r9"), ("s2", "r0"), ("s2", "r1")]


def test_equal_keys_keep_original_submission_order():
    """The documented tie-break: identical (sender, receiver) hash pairs
    stay in submission order, so the schedule is a *stable* sort and the
    inverse permutation is well-defined even with duplicate cases."""
    keys = [("s", "r")] * 5 + [("a", "r")] + [("s", "r")] * 3
    order = affinity_order(keys)
    assert order[0] == 5  # the lone ("a", "r") leads
    # All ("s", "r") duplicates follow in their original positions.
    assert order[1:] == [0, 1, 2, 3, 4, 6, 7, 8]


def test_matches_pythons_stable_sort():
    rng = random.Random(7)
    keys = [(rng.choice("abc"), rng.choice("xy")) for _ in range(64)]
    order = affinity_order(keys)
    expected = [index for index, _ in
                sorted(enumerate(keys), key=lambda pair: pair[1])]
    assert order == expected


def test_deterministic_across_calls():
    keys = [("s%d" % (i % 3), "r%d" % (i % 5)) for i in range(30)]
    assert affinity_order(keys) == affinity_order(list(keys))


def test_inverse_permutation_restores_submission_order():
    keys = [("s2", "rA"), ("s1", "rB"), ("s1", "rA"), ("s2", "rB")]
    order = affinity_order(keys)
    # Schedule in affinity order, then scatter results back the way the
    # pipeline does: results[order[job_id]] = outcome of scheduled job.
    scheduled = [keys[i] for i in order]
    results = [None] * len(keys)
    for job_id, outcome in enumerate(scheduled):
        results[order[job_id]] = outcome
    assert results == keys
