"""Shared-memory segment store lifecycle (ISSUE 6, satellite 3).

Covers the refcounted attach/detach protocol, the torn-write header
guard, unlink idempotence, and the end-of-campaign cleanup sweep that
guarantees no ``/dev/shm`` entry outlives a campaign.
"""

from __future__ import annotations

import pytest

from repro.kernel import linux_5_13
from repro.vm import HAVE_SHM, Machine, MachineConfig
from repro.vm import shm as shm_mod
from repro.vm.shm import (
    DeltaStore,
    SegmentStore,
    SharedSnapshot,
    pack_segments,
    unpack_views,
)

pytestmark = pytest.mark.skipif(
    not HAVE_SHM, reason="multiprocessing.shared_memory unavailable")


@pytest.fixture
def store():
    segment_store = SegmentStore()
    yield segment_store
    segment_store.cleanup()
    assert segment_store.active_segments() == []


def test_create_fetch_roundtrip(store):
    payload = b"post-sender delta bytes" * 10
    assert store.create("blob", payload) is True
    assert store.fetch("blob") == payload
    assert store.created == 1
    assert store.created_bytes == len(payload)


def test_create_is_dedup_not_overwrite(store):
    assert store.create("blob", b"first") is True
    # Second create under the same name loses the race: the segment
    # keeps the first writer's bytes (the DeltaStore dedup contract).
    assert store.create("blob", b"second") is False
    assert store.fetch("blob") == b"first"
    assert store.created == 1


def test_attach_refcounts_until_last_detach(store):
    store.create("blob", b"shared pages")
    first = store.attach_view("blob")
    second = store.attach_view("blob")
    assert bytes(first) == bytes(second) == b"shared pages"
    assert store.refcount("blob") == 2
    assert store.open_mappings() == 1  # one mapping, two references
    store.detach("blob")
    assert store.refcount("blob") == 1
    store.detach("blob")
    assert store.refcount("blob") == 0
    assert store.open_mappings() == 0
    store.detach("blob")  # extra detach is a no-op
    assert store.refcount("blob") == 0


def test_attached_views_are_readonly(store):
    store.create("blob", b"immutable")
    view = store.attach_view("blob")
    with pytest.raises(TypeError):
        view[0] = 0
    store.detach("blob")


def test_missing_segment_is_a_miss(store):
    assert store.attach_view("nope") is None
    assert store.fetch("nope") is None


def test_uncommitted_segment_is_a_miss_and_reclaimed(store):
    # Simulate a writer SIGKILLed between create and the header write:
    # the segment exists but its committed length is still zero.
    name = store.name_of("torn")
    raw = shm_mod.shared_memory.SharedMemory(name=name, create=True, size=64)
    shm_mod._untrack(name)
    raw.close()
    assert store.attach_view("torn") is None
    assert store.fetch("torn") is None
    # The leak audit still sees the orphan, and cleanup reclaims it.
    assert name in store.active_segments()
    assert store.cleanup() >= 1
    assert store.active_segments() == []


def test_corrupt_header_is_a_miss(store):
    # A committed length larger than the segment means a torn header.
    name = store.name_of("corrupt")
    raw = shm_mod.shared_memory.SharedMemory(name=name, create=True, size=32)
    shm_mod._untrack(name)
    raw.buf[:shm_mod._HEADER.size] = shm_mod._HEADER.pack(10_000)
    raw.close()
    assert store.attach_view("corrupt") is None


def test_unlink_is_idempotent(store):
    store.create("blob", b"bytes")
    assert store.unlink("blob") is True
    assert store.unlink("blob") is False
    assert store.unlink("never-created") is False
    assert store.fetch("blob") is None


def test_unlink_keeps_other_attachments_readable(store):
    """POSIX semantics: unlink removes the name, not the mapped pages."""
    store.create("blob", b"still mapped elsewhere")
    reader = SegmentStore(prefix=store.prefix)  # another shard's view
    view = reader.attach_view("blob")
    assert store.unlink("blob") is True
    assert bytes(view) == b"still mapped elsewhere"  # pages outlive the name
    assert store.fetch("blob") is None  # but attach-by-name now misses
    reader.detach("blob")


def test_cleanup_reclaims_every_segment(store):
    for index in range(4):
        store.create(f"seg-{index}", bytes([index]) * 16)
    store.attach_view("seg-0")  # a still-open mapping must not block it
    assert store.cleanup() == 4
    assert store.active_segments() == []
    assert store.open_mappings() == 0


def test_pack_unpack_roundtrip():
    parts = [b"", b"a", b"bc" * 100, b"\x00\xff"]
    views = unpack_views(memoryview(pack_segments(parts)))
    assert [bytes(view) for view in views] == parts
    assert unpack_views(memoryview(pack_segments([]))) == []


# -- the published base snapshot ----------------------------------------------


CONFIG = MachineConfig(bugs=linux_5_13())


def test_shared_snapshot_roundtrip_preserves_identity(store):
    machine = Machine(CONFIG)
    shared = SharedSnapshot.publish(store, machine.snapshot)
    view = shared.attach()
    assert view.content_id == machine.snapshot.content_id
    assert view.payloads is not None
    assert len(view.payloads) == len(machine.snapshot.image.payloads)

    shard_machine = Machine(CONFIG, shared_snapshot=view)
    # The inherited content id is the compatibility key every shared
    # sender-state delta relies on: it must match without re-hashing.
    assert shard_machine.snapshot.content_id == machine.snapshot.content_id
    shard_machine.reset()
    shared.detach()


def test_shared_snapshot_publishes_once(store):
    machine = Machine(CONFIG)
    SharedSnapshot.publish(store, machine.snapshot)
    with pytest.raises(RuntimeError, match="already published"):
        SharedSnapshot.publish(store, machine.snapshot)


# -- the delta store ----------------------------------------------------------


def test_delta_store_publish_fetch(store):
    deltas = DeltaStore(store)
    key = ("snapshot-id", "sender-hash")
    assert deltas.publish(key, b"delta bytes") is not None
    assert deltas.publish(key, b"delta bytes") is None  # idempotent
    assert deltas.fetch(key) == b"delta bytes"
    assert deltas.fetch(("snapshot-id", "other")) is None
    assert (deltas.publishes, deltas.fetch_hits, deltas.fetch_misses) \
        == (1, 1, 1)


def test_delta_store_names_are_deterministic():
    key = ("snapshot-id", "sender-hash")
    assert DeltaStore.suffix_of(key) == DeltaStore.suffix_of(key)
    assert DeltaStore.suffix_of(key) != DeltaStore.suffix_of(("a", "b"))


def test_delta_store_take_published_drains(store):
    deltas = DeltaStore(store)
    suffix = deltas.publish(("k", 1), b"one")
    assert deltas.take_published() == [suffix]
    assert deltas.take_published() == []
    # The supervisor unlinks a dead shard's announced names.
    assert deltas.unlink(suffix) is True
    assert deltas.fetch(("k", 1)) is None
