"""Cluster edge cases: pool sizing, failure propagation, determinism."""

from __future__ import annotations

import time

import pytest

from repro.kernel import linux_5_13
from repro.vm import Machine, MachineConfig, run_distributed
from repro.vm import cluster as cluster_mod

CONFIG = MachineConfig(bugs=linux_5_13())


def test_more_workers_than_jobs():
    """The pool clamps to the job count: no machine boots for nothing."""
    results = run_distributed(CONFIG, ["a", "b"],
                              lambda machine, payload: payload.upper(),
                              workers=8)
    assert [r.outcome for r in results] == ["A", "B"]
    # Only as many workers as jobs ever produced results.
    assert {r.worker for r in results} <= {0, 1}


def test_empty_payload_list():
    results = run_distributed(CONFIG, [],
                              lambda machine, payload: payload, workers=3)
    assert results == []


def test_runner_exception_carries_job_id_and_spares_others():
    """One raising job reports its error; every other job still runs."""

    def runner(machine, payload):
        if payload == 2:
            raise ValueError("boom on two")
        return payload * 10

    results = run_distributed(CONFIG, [0, 1, 2, 3], runner, workers=2)
    assert len(results) == 4
    failed = results[2]
    assert failed.job_id == 2
    assert failed.outcome is None
    assert "ValueError" in failed.error and "boom on two" in failed.error
    assert [r.outcome for r in results if r.job_id != 2] == [0, 10, 30]
    assert all(r.error is None for r in results if r.job_id != 2)


def test_results_in_order_under_scheduling_jitter():
    """Job-id ordering is independent of which worker finishes when."""

    def runner(machine, payload):
        # Earlier jobs sleep longer, so completion order inverts
        # submission order whenever more than one worker is running.
        time.sleep(0.02 if payload < 2 else 0.0)
        return payload

    payloads = list(range(6))
    results = run_distributed(CONFIG, payloads, runner, workers=3)
    assert [r.job_id for r in results] == payloads
    assert [r.outcome for r in results] == payloads


def test_worker_machines_get_worker_ids():
    def runner(machine, payload):
        return machine.cluster_worker_id

    machines = []
    results = run_distributed(CONFIG, list(range(8)), runner, workers=2,
                              machines_out=machines)
    assert {r.outcome for r in results} <= {0, 1}
    assert len(machines) == 2
    assert sorted(m.cluster_worker_id for m in machines) == [0, 1]


def test_boot_failure_reports_unfinished_jobs(monkeypatch):
    """A worker dying at boot raises instead of returning a short list."""

    def exploding_machine(config):
        raise RuntimeError("no memory for VM")

    monkeypatch.setattr(cluster_mod, "Machine", exploding_machine)
    with pytest.raises(RuntimeError) as excinfo:
        run_distributed(CONFIG, ["x", "y", "z"],
                        lambda machine, payload: payload, workers=2)
    message = str(excinfo.value)
    assert "3 unfinished job(s)" in message
    assert "[0, 1, 2]" in message
    assert "no memory for VM" in message


def test_one_worker_booting_still_drains_queue(monkeypatch):
    """If only some workers boot, the survivors finish every job."""
    real_machine = cluster_mod.Machine
    booted = []

    def flaky_machine(config):
        if not booted:
            booted.append(True)
            return real_machine(config)
        raise RuntimeError("second VM failed to boot")

    monkeypatch.setattr(cluster_mod, "Machine", flaky_machine)
    results = run_distributed(CONFIG, list(range(5)),
                              lambda machine, payload: payload, workers=2)
    assert [r.outcome for r in results] == list(range(5))
    # Whichever worker won the boot race did all the work alone.
    assert len({r.worker for r in results}) == 1
