"""Per-site injection + recovery semantics (ISSUE 4 tentpole).

Each test drives exactly one site through its recovery path and checks
the two things that matter: the recovered state is equivalent to the
clean run's, and the books balance (injected == recovered + infra).
"""

from __future__ import annotations

import pytest

from repro.core.execution import BaselineCache
from repro.core.nondet import NondetStore
from repro.corpus.seeds import seed_programs
from repro.faults.plan import (
    SITE_CACHE_EVICT,
    SITE_CACHE_STALE_OWNER,
    SITE_EXEC_TIMEOUT,
    SITE_RESTORE_FAIL,
    SITE_SEGMENT_CORRUPT,
    SITE_WORKER_SLOW,
    STALE_OWNER,
    ExecTimeoutInjected,
    FaultPlan,
    FaultRetriesExhausted,
    call_with_fault_retries,
)
from repro.kernel import linux_5_13
from repro.vm import Machine, MachineConfig, run_distributed, state_fingerprint
from repro.vm.machine import RECEIVER


def _machine(plan, **config_kwargs):
    return Machine(MachineConfig(bugs=linux_5_13(), fault_plan=plan,
                                 **config_kwargs))


def test_full_restore_failure_recovers_to_identical_state():
    clean = Machine(MachineConfig(bugs=linux_5_13(), full_restore=True))
    clean.reset()
    reference = state_fingerprint(clean.kernel)

    # Occurrence 0 is the boot reset; fire on the explicit reset.
    plan = FaultPlan(seed=0, schedule={SITE_RESTORE_FAIL: {1}})
    machine = _machine(plan, full_restore=True)
    machine.reset()
    assert state_fingerprint(machine.kernel) == reference
    assert machine.stats.recovery_restores == 1
    assert plan.stats.injected == {SITE_RESTORE_FAIL: 1}
    assert plan.stats.accounted()


def test_full_restore_exhaustion_charges_infra():
    plan = FaultPlan(seed=0, max_retries=2,
                     schedule={SITE_RESTORE_FAIL: set(range(1, 30))})
    machine = _machine(plan, full_restore=True)
    with pytest.raises(FaultRetriesExhausted):
        machine.reset()
    assert plan.stats.infra_failed.get(SITE_RESTORE_FAIL) == 3
    assert plan.stats.accounted()


def test_segmented_restore_failure_falls_back_to_restore_all():
    reference_machine = Machine(MachineConfig(bugs=linux_5_13()))
    reference = state_fingerprint(reference_machine.snapshot.restore())

    plan = FaultPlan(seed=0, schedule={SITE_RESTORE_FAIL: {0}})
    machine = _machine(plan)
    machine.run(RECEIVER, seed_programs()["read_uptime"])
    machine.reset()  # injected failure -> restore_all_in_place fallback
    assert state_fingerprint(machine.kernel) == reference
    assert machine.stats.recovery_restores == 1
    assert plan.stats.recovered == {SITE_RESTORE_FAIL: 1}
    assert plan.stats.accounted()


def test_segment_corruption_detected_and_repaired():
    reference_machine = Machine(MachineConfig(bugs=linux_5_13()))
    reference = state_fingerprint(reference_machine.snapshot.restore())

    plan = FaultPlan(seed=0, schedule={SITE_SEGMENT_CORRUPT: {0}})
    machine = _machine(plan)
    machine.run(RECEIVER, seed_programs()["udp_send"])
    machine.reset()  # drops one dirty group; verify() must catch it
    assert not machine.snapshot.image.corruption_pending
    assert state_fingerprint(machine.kernel) == reference
    assert plan.stats.recovered == {SITE_SEGMENT_CORRUPT: 1}
    assert plan.stats.accounted()


def test_exec_timeout_rerun_matches_clean_run():
    program = seed_programs()["read_uptime"]
    clean = Machine(MachineConfig(bugs=linux_5_13()))
    clean.reset()
    clean_records = clean.run(RECEIVER, program).records

    plan = FaultPlan(seed=0, schedule={SITE_EXEC_TIMEOUT: {0}})
    machine = _machine(plan)

    def run_case():
        machine.reset()
        return machine.run(RECEIVER, program)

    with pytest.raises(ExecTimeoutInjected):
        run_case()  # first attempt aborts mid-program
    plan.record_recovered([SITE_EXEC_TIMEOUT])  # manual resolution here
    result = run_case()  # fresh restore -> the clean execution
    assert [(r.name, r.retval, r.errno) for r in result.records] \
        == [(r.name, r.retval, r.errno) for r in clean_records]
    assert plan.stats.accounted()


def test_exec_timeout_with_retry_wrapper():
    program = seed_programs()["read_uptime"]
    plan = FaultPlan(seed=0, schedule={SITE_EXEC_TIMEOUT: {0}})
    machine = _machine(plan)

    def run_case():
        machine.reset()
        return machine.run(RECEIVER, program)

    result = call_with_fault_retries(plan, run_case)
    assert result.live_records()
    assert plan.stats.recovered == {SITE_EXEC_TIMEOUT: 1}
    assert plan.stats.accounted()


def test_baseline_cache_spurious_eviction_recomputes():
    plan = FaultPlan(seed=0, schedule={SITE_CACHE_EVICT: {0}})
    cache = BaselineCache(faults=plan)
    cache.put("recv-hash", "result")
    assert cache.get("recv-hash") is None  # evicted under the reader
    assert cache.get("recv-hash") is None  # genuinely gone, recompute
    cache.put("recv-hash", "result")
    assert cache.get("recv-hash") == "result"
    assert plan.stats.recovered == {SITE_CACHE_EVICT: 1}
    assert plan.stats.accounted()


def test_nondet_store_eviction_removes_disk_copy(tmp_path):
    plan = FaultPlan(seed=0, schedule={SITE_CACHE_EVICT: {0}})
    store = NondetStore(str(tmp_path), faults=plan)
    marks = frozenset({("calls", 0, "retval")})
    store.put("prog-hash", marks)
    assert store.get("prog-hash") is None
    # The disk copy must not silently resurrect the entry.
    assert NondetStore(str(tmp_path)).get("prog-hash") is None
    assert plan.stats.recovered == {SITE_CACHE_EVICT: 1}
    assert plan.stats.accounted()


def test_stale_owner_tag_survives_owner_invalidation_until_sweep():
    plan = FaultPlan(seed=0, schedule={SITE_CACHE_STALE_OWNER: {0}})
    cache = BaselineCache(faults=plan)
    cache.put("recv-hash", "result", owner=3)
    assert cache.owner_tags() == [STALE_OWNER]
    # Owner-based invalidation can no longer find the entry: the leak.
    assert cache.invalidate_owner(3) == 0
    assert len(cache) == 1
    # The sweep is the repair path — and resolves the injection.
    assert cache.purge_stale() == 1
    assert len(cache) == 0
    assert plan.stats.recovered == {SITE_CACHE_STALE_OWNER: 1}
    assert plan.stats.accounted()


def test_nondet_store_stale_tag_resolved_by_overwrite():
    plan = FaultPlan(seed=0, schedule={SITE_CACHE_STALE_OWNER: {0}})
    store = NondetStore(faults=plan)
    marks = frozenset({("calls", 1, "retval")})
    store.put("prog-hash", marks, owner=2)
    assert store.owner_tags() == [STALE_OWNER]
    store.put("prog-hash", marks, owner=4)  # clean overwrite repairs it
    assert store.owner_tags() == [4]
    assert store.purge_stale() == 0
    assert plan.stats.recovered == {SITE_CACHE_STALE_OWNER: 1}
    assert plan.stats.accounted()


def test_worker_slow_is_absorbed_by_construction():
    plan = FaultPlan(seed=0, rates={SITE_WORKER_SLOW: 1.0},
                     slow_seconds=0.0001)
    results = run_distributed(MachineConfig(bugs=linux_5_13()),
                              list(range(6)),
                              lambda machine, payload: payload * 2,
                              workers=2, faults=plan)
    assert [r.outcome for r in results] == [0, 2, 4, 6, 8, 10]
    assert plan.stats.injected.get(SITE_WORKER_SLOW, 0) == 6
    assert plan.stats.recovered.get(SITE_WORKER_SLOW, 0) == 6
    assert plan.stats.accounted()
