"""FaultPlan determinism, parsing, and accounting (ISSUE 4, satellite 4).

The property the whole chaos suite rests on: a plan is a pure function
of its seed.  Same seed ⇒ identical injection schedule, and two
identical single-threaded campaigns produce identical fault counters.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import CampaignConfig, Kit
from repro.faults.plan import (
    ALL_SITES,
    SITE_EXEC_TIMEOUT,
    SITE_RATE_SCALE,
    SITE_WORKER_CRASH,
    FaultInjectedError,
    FaultPlan,
    FaultRetriesExhausted,
    FaultStats,
    call_with_fault_retries,
    decision,
)
from repro.kernel import linux_5_13
from repro.vm.machine import MachineConfig


def test_decision_is_pure_and_seed_sensitive():
    assert decision(7, "worker.crash", 3) == decision(7, "worker.crash", 3)
    draws = [decision(7, "worker.crash", k) for k in range(64)]
    other_seed = [decision(8, "worker.crash", k) for k in range(64)]
    other_site = [decision(7, "result.drop", k) for k in range(64)]
    assert draws != other_seed
    assert draws != other_site
    assert all(0.0 <= d < 1.0 for d in draws)


@pytest.mark.parametrize("site", ALL_SITES)
def test_same_seed_same_schedule(site):
    first = FaultPlan(seed=11, rate=0.3)
    second = FaultPlan(seed=11, rate=0.3)
    assert first.preview(site, 300) == second.preview(site, 300)


def test_different_seeds_diverge_somewhere():
    first = FaultPlan(seed=1, rate=0.3)
    second = FaultPlan(seed=2, rate=0.3)
    assert any(first.preview(site, 200) != second.preview(site, 200)
               for site in ALL_SITES)


def test_should_inject_matches_preview_and_counts():
    plan = FaultPlan(seed=3, rate=0.4)
    site = SITE_WORKER_CRASH
    expected = plan.preview(site, 50)
    observed = [plan.should_inject(site) for _ in range(50)]
    assert observed == expected
    assert plan.occurrences(site) == 50
    assert plan.stats.injected.get(site, 0) == sum(expected)


def test_schedule_mode_fires_exactly_at_indices():
    plan = FaultPlan(seed=0, rate=0.9,
                     schedule={SITE_WORKER_CRASH: {1, 4}})
    fired = [k for k in range(8) if plan.should_inject(SITE_WORKER_CRASH)]
    assert fired == [1, 4]


def test_rate_shortcuts_and_site_scaling():
    assert not any(FaultPlan(seed=0, rate=0.0).preview(SITE_WORKER_CRASH, 50))
    assert all(FaultPlan(seed=0, rate=1.0).preview(SITE_WORKER_CRASH, 50))
    # The blanket rate is frequency-compensated for the per-syscall
    # site; an explicit per-site override is taken verbatim.
    assert SITE_RATE_SCALE[SITE_EXEC_TIMEOUT] < 1.0
    scaled = FaultPlan(seed=0, rate=1.0)
    assert not all(scaled.preview(SITE_EXEC_TIMEOUT, 50))
    exact = FaultPlan(seed=0, rates={SITE_EXEC_TIMEOUT: 1.0})
    assert all(exact.preview(SITE_EXEC_TIMEOUT, 50))


def test_unknown_site_rejected():
    with pytest.raises(ValueError):
        FaultPlan(sites=("no.such.site",))
    with pytest.raises(ValueError):
        FaultPlan(rates={"no.such.site": 0.5})
    with pytest.raises(ValueError):
        FaultPlan(schedule={"no.such.site": {0}})


def test_parse_specs():
    plan = FaultPlan.parse("7:0.2")
    assert plan.seed == 7
    bare = FaultPlan.parse("7")
    assert bare.seed == 7  # default rate applies
    narrowed = FaultPlan.parse("7:0.2:worker.crash,exec.timeout")
    assert narrowed.preview(SITE_WORKER_CRASH, 40).count(True) > 0
    assert not any(narrowed.preview("restore.fail", 40))
    for bad in ("x:0.2", "7:high", "7:2.0", "7:0.2:bogus.site", "7:0.2:a:b"):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)


def test_fault_stats_accounting():
    stats = FaultStats()
    assert stats.accounted()
    stats.note_injected("worker.crash")
    assert not stats.accounted()
    stats.note_recovered(["worker.crash"])
    assert stats.accounted()
    stats.note_injected("worker.crash")
    stats.note_infra_failed(["worker.crash"])
    assert stats.accounted()
    assert stats.injected_total == 2
    assert stats.recovered_total == 1
    assert stats.infra_failed_total == 1


def test_call_with_fault_retries_recovers_and_accounts():
    plan = FaultPlan(seed=0)
    attempts = []

    def flaky():
        attempts.append(True)
        if len(attempts) < 3:
            # Real sites record the injection at the point of failure.
            plan.stats.note_injected("exec.timeout")
            raise FaultInjectedError("exec.timeout")
        return "done"

    assert call_with_fault_retries(plan, flaky) == "done"
    assert plan.stats.recovered.get("exec.timeout") == 2
    assert plan.stats.accounted()


def test_call_with_fault_retries_exhaustion_charges_infra():
    plan = FaultPlan(seed=0, max_retries=2)

    def always_fails():
        plan.stats.note_injected("exec.timeout")
        raise FaultInjectedError("exec.timeout")

    with pytest.raises(FaultRetriesExhausted) as excinfo:
        call_with_fault_retries(plan, always_fails, context="unit")
    assert excinfo.value.sites == ["exec.timeout"] * 3
    assert plan.stats.infra_failed.get("exec.timeout") == 3
    assert plan.stats.accounted()


def test_identical_campaigns_identical_fault_counters():
    """Satellite 4: same seed ⇒ identical schedule AND identical
    CampaignStats fault counters across two single-threaded runs."""

    def campaign():
        plan = FaultPlan(seed=5, rate=0.2)
        config = CampaignConfig(machine=MachineConfig(bugs=linux_5_13()),
                                corpus_size=10, max_test_cases=8,
                                workers=0, faults=plan)
        return Kit(config).run(), plan

    first, first_plan = campaign()
    second, second_plan = campaign()
    assert first.stats.faults_injected == second.stats.faults_injected
    assert first.stats.faults_recovered == second.stats.faults_recovered
    assert first.stats.faults_infra == second.stats.faults_infra
    assert first.stats.faults_injected_total() > 0
    assert first.stats.faults_accounted()
    assert first.stats.outcomes == second.stats.outcomes
    # The occurrence streams themselves replayed identically.
    assert {site: first_plan.occurrences(site) for site in ALL_SITES} \
        == {site: second_plan.occurrences(site) for site in ALL_SITES}
    assert sorted(first.bugs_found()) == sorted(second.bugs_found())
