"""Cluster supervision: job re-queue, worker death, the owner-tag leak
(ISSUE 4, satellites 1 and 2)."""

from __future__ import annotations

import pytest

from repro.core.execution import BaselineCache
from repro.faults.invariants import CacheOwnerLeakError, verify_owner_invariant
from repro.faults.plan import (
    SITE_RESULT_DROP,
    SITE_WORKER_CRASH,
    FaultPlan,
)
from repro.kernel import linux_5_13
from repro.vm import MachineConfig, run_distributed

CONFIG = MachineConfig(bugs=linux_5_13())


def test_single_worker_death_then_recovery():
    """Satellite 1 regression: one crash, one re-queue, full results."""
    plan = FaultPlan(seed=0, schedule={SITE_WORKER_CRASH: {0}})
    dead = []
    results = run_distributed(CONFIG, list(range(4)),
                              lambda machine, payload: payload + 100,
                              workers=1, faults=plan, max_job_retries=1,
                              on_worker_death=dead.append)
    assert [r.outcome for r in results] == [100, 101, 102, 103]
    assert dead == [0]
    # The replacement got a fresh id — dead ids are never recycled, so
    # cache owner tags cannot alias across the death.
    assert all(r.worker != 0 for r in results)
    assert plan.stats.recovered.get(SITE_WORKER_CRASH) == 1
    assert plan.stats.accounted()


def test_death_with_no_retries_raises_by_default():
    """The historical contract: an unfinished job fails the run loudly."""
    plan = FaultPlan(seed=0, schedule={SITE_WORKER_CRASH: {0}})
    with pytest.raises(RuntimeError) as excinfo:
        run_distributed(CONFIG, list(range(3)),
                        lambda machine, payload: payload,
                        workers=1, faults=plan, max_job_retries=0)
    assert "unfinished job(s)" in str(excinfo.value)
    assert plan.stats.accounted()


def test_exhausted_retries_degrade_gracefully_when_not_strict():
    # Every fetch crashes the worker: the first-queued job burns one
    # failed attempt per round until its budget is gone.
    plan = FaultPlan(seed=0, rates={SITE_WORKER_CRASH: 1.0})
    results = run_distributed(CONFIG, ["only-job"],
                              lambda machine, payload: payload,
                              workers=1, faults=plan, max_job_retries=2,
                              strict=False)
    assert len(results) == 1
    assert results[0].outcome is None
    assert "retries exhausted after 3 failed attempt(s)" in results[0].error
    assert plan.stats.infra_failed.get(SITE_WORKER_CRASH) == 3
    assert plan.stats.accounted()


def test_dropped_result_is_requeued_and_recovered():
    plan = FaultPlan(seed=0, schedule={SITE_RESULT_DROP: {0}})
    results = run_distributed(CONFIG, list(range(3)),
                              lambda machine, payload: payload * 3,
                              workers=1, faults=plan, max_job_retries=1)
    assert [r.outcome for r in results] == [0, 3, 6]
    assert plan.stats.recovered.get(SITE_RESULT_DROP) == 1
    assert plan.stats.accounted()


def test_genuine_job_exception_is_not_retried():
    """Retries cover infrastructure faults, not deterministic job bugs."""
    plan = FaultPlan(seed=0)  # no sites enabled
    calls = []

    def runner(machine, payload):
        calls.append(payload)
        if payload == 1:
            raise ValueError("deterministic bug")
        return payload

    results = run_distributed(CONFIG, [0, 1, 2], runner, workers=1,
                              faults=plan, max_job_retries=5, strict=False)
    assert calls.count(1) == 1  # exactly one attempt
    assert "ValueError" in results[1].error
    assert results[0].outcome == 0 and results[2].outcome == 2


# -- satellite 2: the owner-tagged cache-entry leak ---------------------------


def _run_leak_scenario(with_death_hook: bool):
    """A worker publishes a baseline, then dies before its next insert.

    Crash scheduled at occurrence 1: the worker completes job 0 (its
    baseline insert lands in the shared cache under its owner id), then
    dies fetching job 1 — between inserts, exactly the leak window.
    """
    plan = FaultPlan(seed=0, schedule={SITE_WORKER_CRASH: {1}})
    baselines = BaselineCache()
    dead = []

    def runner(machine, payload):
        baselines.put(f"receiver-{payload}", f"result-{payload}",
                      owner=machine.cluster_worker_id)
        return payload

    def on_death(worker_id):
        dead.append(worker_id)
        if with_death_hook:
            baselines.invalidate_owner(worker_id)

    results = run_distributed(CONFIG, [0, 1], runner, workers=1,
                              faults=plan, max_job_retries=1,
                              on_worker_death=on_death)
    assert [r.outcome for r in results] == [0, 1]
    assert dead == [0]
    assert plan.stats.accounted()
    return baselines, dead


def test_leak_reproduced_without_death_hook():
    baselines, dead = _run_leak_scenario(with_death_hook=False)
    with pytest.raises(CacheOwnerLeakError) as excinfo:
        verify_owner_invariant(dead, baselines=baselines)
    assert "baselines" in str(excinfo.value)


def test_death_hook_closes_the_leak():
    baselines, dead = _run_leak_scenario(with_death_hook=True)
    verify_owner_invariant(dead, baselines=baselines)  # must not raise
    # The survivor's (replacement's) entries are untouched.
    assert any(tag not in dead for tag in baselines.owner_tags())
