"""Chaos property: a faulted campaign finds the same bugs (satellite 3).

For every seed, every injection site, and every kernel: running the
campaign under fault injection must report exactly the bug set the
fault-free campaign reports, with every injection accounted for.  A
light slice runs in tier-1; the full sweep is behind ``-m chaos``.
"""

from __future__ import annotations

import pytest

from repro.core.known_bugs import SCENARIOS, TABLE3_ROWS, scenario_machine_config
from repro.core.pipeline import CampaignConfig, Kit
from repro.core.race_scenarios import race_campaign_config
from repro.faults.plan import (
    ALL_SITES,
    SITE_SCHED_PREEMPT,
    SITE_WORKER_CRASH,
    SITE_WORKER_KILL,
    FaultPlan,
)
from repro.kernel import linux_5_13
from repro.vm import fork_available
from repro.vm.machine import MachineConfig

CORPUS_SIZE = 16
MAX_CASES = 16

KERNELS = {"5.13": MachineConfig(bugs=linux_5_13())}
KERNELS.update({row: scenario_machine_config(SCENARIOS[row])
                for row in TABLE3_ROWS})


def _campaign(kernel_name, faults=None, workers=0, **overrides):
    config = CampaignConfig(machine=KERNELS[kernel_name],
                            corpus_size=CORPUS_SIZE,
                            max_test_cases=MAX_CASES,
                            workers=workers, faults=faults, **overrides)
    return Kit(config).run()


@pytest.fixture(scope="module")
def clean_bugs():
    cache = {}

    def bugs_for(kernel_name):
        if kernel_name not in cache:
            cache[kernel_name] = sorted(_campaign(kernel_name).bugs_found())
        return cache[kernel_name]

    return bugs_for


def _assert_equivalent(result, plan, expected_bugs):
    assert sorted(result.bugs_found()) == expected_bugs
    assert result.stats.faults_accounted(), plan.stats.snapshot()
    assert result.stats.faults_injected_total() \
        == result.stats.faults_recovered_total() \
        + result.stats.faults_infra_total() \
        + result.stats.faults_poisoned_total()
    # No infra failure may masquerade as a bug report.
    assert all(r.case is not None for r in result.reports)


# -- tier-1 slice -------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1])
def test_chaos_campaign_reports_same_bugs(seed, clean_bugs):
    plan = FaultPlan(seed=seed, rate=0.15)
    result = _campaign("5.13", faults=plan, workers=2)
    _assert_equivalent(result, plan, clean_bugs("5.13"))
    assert result.stats.faults_injected_total() > 0


def test_chaos_in_process_campaign(clean_bugs):
    plan = FaultPlan(seed=2, rate=0.2)
    result = _campaign("5.13", faults=plan, workers=0)
    _assert_equivalent(result, plan, clean_bugs("5.13"))


@pytest.mark.parametrize("seed", [0, 1])
def test_chaos_interleaved_campaign_reports_race_bugs(seed):
    """The interleaving leg: schedule exploration under blanket fault
    injection — including ``sched.preempt`` deaths mid-interleaving —
    still converges on the full race-bug set with balanced books."""
    plan = FaultPlan(seed=seed, rate=0.15)
    result = Kit(race_campaign_config(faults=plan, workers=2)).run()
    _assert_equivalent(result, plan, ["T1", "T2", "T3"])
    assert result.stats.faults_injected_total() > 0


def test_sched_preempt_site_alone():
    """Every injection at the schedule-execution site recovers via the
    whole-case retry and no witness is lost."""
    plan = FaultPlan(seed=3, rate=0.5, sites=(SITE_SCHED_PREEMPT,))
    result = Kit(race_campaign_config(faults=plan)).run()
    _assert_equivalent(result, plan, ["T1", "T2", "T3"])
    assert result.stats.faults_injected.get(SITE_SCHED_PREEMPT, 0) > 0


def test_graceful_degradation_when_cluster_unusable():
    """Every worker crashes on every fetch: the campaign still completes,
    each case degrades to infra_failed, and nothing leaks into reports."""
    plan = FaultPlan(seed=0, rates={SITE_WORKER_CRASH: 1.0},
                     max_job_retries=1)
    # rand has no profiling stage, so the crash storm hits execution only.
    config = CampaignConfig(machine=KERNELS["5.13"], corpus_size=6,
                            strategy="rand", rand_budget=6, workers=2,
                            faults=plan, diagnose=False)
    result = Kit(config).run()
    assert result.reports == []
    assert result.stats.outcomes == {"infra_failed": 6}
    assert result.stats.infra_failed_cases == 6
    assert result.stats.faults_accounted(), plan.stats.snapshot()
    assert result.bugs_found() == set()


needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="process shards require fork")


@needs_fork
@pytest.mark.parametrize("seed", [0, 1])
def test_chaos_process_campaign_reports_same_bugs(seed, clean_bugs):
    """The tier-1 process-mode slice: forked shards under blanket
    injection (worker.kill included) find exactly the clean bug set."""
    plan = FaultPlan(seed=seed, rate=0.15)
    result = _campaign("5.13", faults=plan, workers=2,
                       shard_mode="process")
    _assert_equivalent(result, plan, clean_bugs("5.13"))
    assert result.stats.faults_injected_total() > 0


@needs_fork
def test_graceful_degradation_when_every_shard_is_killed():
    """The process-mode twin of the crash-storm test: every job attempt
    SIGKILLs its shard, yet the campaign completes with every case
    degraded to infra_failed, balanced books, and no /dev/shm leak."""
    import os

    plan = FaultPlan(seed=0, rates={SITE_WORKER_KILL: 1.0},
                     max_job_retries=1)
    config = CampaignConfig(machine=KERNELS["5.13"], corpus_size=6,
                            strategy="rand", rand_budget=6, workers=2,
                            shard_mode="process", faults=plan,
                            diagnose=False)
    result = Kit(config).run()
    assert result.reports == []
    assert result.stats.outcomes == {"infra_failed": 6}
    assert result.stats.infra_failed_cases == 6
    assert result.stats.faults_accounted(), plan.stats.snapshot()
    assert result.bugs_found() == set()
    assert result.stats.shards_died > 0
    if os.path.isdir("/dev/shm"):
        assert not [entry for entry in os.listdir("/dev/shm")
                    if entry.startswith("kitshm")]


# -- the full sweep (deselected by default; run with -m chaos) ----------------


@pytest.mark.chaos
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("site", ALL_SITES)
def test_single_site_sweep(site, seed, clean_bugs):
    plan = FaultPlan(seed=seed, rate=0.3, sites=(site,))
    result = _campaign("5.13", faults=plan, workers=2)
    _assert_equivalent(result, plan, clean_bugs("5.13"))


@pytest.mark.chaos
@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
def test_all_sites_all_kernels_sweep(kernel_name, seed, clean_bugs):
    plan = FaultPlan(seed=seed, rate=0.15)
    result = _campaign(kernel_name, faults=plan, workers=2)
    _assert_equivalent(result, plan, clean_bugs(kernel_name))


@needs_fork
@pytest.mark.chaos
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("site", ALL_SITES)
def test_process_single_site_sweep(site, seed, clean_bugs):
    """Every injection site, one at a time, against forked shards —
    including worker.kill, which only exists in process mode."""
    plan = FaultPlan(seed=seed, rate=0.3, sites=(site,))
    result = _campaign("5.13", faults=plan, workers=2,
                       shard_mode="process")
    _assert_equivalent(result, plan, clean_bugs("5.13"))


@needs_fork
@pytest.mark.chaos
@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
def test_process_all_sites_all_kernels_sweep(kernel_name, seed, clean_bugs):
    plan = FaultPlan(seed=seed, rate=0.15)
    result = _campaign(kernel_name, faults=plan, workers=2,
                       shard_mode="process")
    _assert_equivalent(result, plan, clean_bugs(kernel_name))
