"""Self-healing supervision: retry budgets, poison pairs, hang watchdog.

Covers the :class:`~repro.faults.retry.RetryPolicy` configuration
itself, the thread-mode supervisor (:mod:`repro.vm.cluster`), the
process-mode supervisor (:mod:`repro.vm.shardpool`), and the pipeline
wiring that turns a quarantined job into ``Outcome.POISONED``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.pipeline import CampaignConfig, Kit
from repro.faults.plan import (
    SITE_WORKER_CRASH,
    SITE_WORKER_KILL,
    FaultPlan,
)
from repro.faults.retry import (
    CAUSE_TRANSIT,
    CAUSE_WORKER_DEATH,
    RetryPolicy,
    describe_failures,
    tally,
)
from repro.kernel import linux_5_13
from repro.vm import fork_available
from repro.vm.cluster import run_distributed
from repro.vm.machine import MachineConfig
from repro.vm.shardpool import run_sharded

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="process shards require fork")

MACHINE = MachineConfig(bugs=linux_5_13())


class TestRetryPolicy:
    def test_budget_lookup_falls_back_to_default(self):
        policy = RetryPolicy(site_budgets={"worker.crash": 3},
                             default_budget=7)
        assert policy.budget_for("worker.crash") == 3
        assert policy.budget_for("result.drop") == 7

    def test_exhausted_cause(self):
        policy = RetryPolicy(site_budgets={"worker.crash": 2},
                             default_budget=5)
        assert policy.exhausted_cause({"worker.crash": 2}) is None
        assert policy.exhausted_cause({"worker.crash": 3}) == "worker.crash"
        assert policy.exhausted_cause({"result.drop": 5}) is None
        assert policy.exhausted_cause({"result.drop": 6}) == "result.drop"

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.5)
        assert policy.backoff_seconds(0) == 0.0
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.2)
        assert policy.backoff_seconds(3) == pytest.approx(0.4)
        assert policy.backoff_seconds(10) == pytest.approx(0.5)

    def test_backoff_disabled_by_default(self):
        assert RetryPolicy().backoff_seconds(10) == 0.0

    def test_poison_threshold(self):
        policy = RetryPolicy(poison_after=3)
        assert not policy.should_poison(2)
        assert policy.should_poison(3)
        assert not RetryPolicy(poison_after=0).should_poison(100)

    def test_describe_and_tally(self):
        ledger = {}
        tally(ledger, CAUSE_WORKER_DEATH)
        tally(ledger, CAUSE_WORKER_DEATH)
        tally(ledger, CAUSE_TRANSIT)
        assert describe_failures(ledger) == "transitx1, worker.deathx2"
        assert describe_failures({}) == "no attributed causes"


def _deadly_runner(kill_payloads, attempts=None):
    """A case runner that kills its worker on selected payloads.

    *kill_payloads* maps payload -> how many attempts die before one
    succeeds (None = every attempt dies).  *attempts*, when given,
    receives the per-payload attempt count.
    """
    counts = attempts if attempts is not None else {}

    def runner(machine, payload):
        counts[payload] = counts.get(payload, 0) + 1
        budget = kill_payloads.get(payload, 0)
        if payload in kill_payloads and (
                budget is None or counts[payload] <= budget):
            raise SystemExit(f"worker shot by {payload!r}")
        return f"done:{payload}"

    return runner


class TestThreadSupervision:
    def test_poison_pair_quarantined(self):
        policy = RetryPolicy(poison_after=2, default_budget=50)
        results = run_distributed(
            MACHINE, ["ok", "poison"], _deadly_runner({"poison": None}),
            workers=2, retry_policy=policy, strict=False)
        assert results[0].outcome == "done:ok"
        poisoned = results[1]
        assert poisoned.poisoned
        assert poisoned.outcome is None
        assert "poisoned: killed 2 worker(s)" in poisoned.error
        assert f"{CAUSE_WORKER_DEATH}x2" in poisoned.error

    def test_per_site_budget_exhausts_to_infra(self):
        policy = RetryPolicy(site_budgets={CAUSE_WORKER_DEATH: 1},
                             poison_after=0)
        results = run_distributed(
            MACHINE, ["victim"], _deadly_runner({"victim": None}),
            workers=1, retry_policy=policy, strict=False)
        assert not results[0].poisoned
        assert f"retry budget for {CAUSE_WORKER_DEATH!r} exhausted" \
            in results[0].error
        assert results[0].last_fault_site == CAUSE_WORKER_DEATH

    def test_result_carries_attempts_and_cause(self):
        results = run_distributed(
            MACHINE, ["flaky", "ok"], _deadly_runner({"flaky": 1}),
            workers=2, max_job_retries=3)
        flaky, ok = results
        assert flaky.outcome == "done:flaky"
        assert flaky.attempts == 1
        assert flaky.last_fault_site == CAUSE_WORKER_DEATH
        assert ok.attempts == 0
        assert ok.last_fault_site is None

    def test_strict_error_names_attempts_and_cause(self):
        with pytest.raises(RuntimeError) as excinfo:
            run_distributed(MACHINE, ["victim"],
                            _deadly_runner({"victim": None}),
                            workers=1, max_job_retries=1)
        message = str(excinfo.value)
        assert "unfinished job(s)" in message
        assert f"last cause {CAUSE_WORKER_DEATH}" in message
        assert "attempt(s)" in message

    def test_prior_deaths_seed_quarantine(self):
        """Deaths journaled by earlier runs keep counting: one more
        kill tips an almost-quarantined pair over the edge."""
        policy = RetryPolicy(poison_after=5, default_budget=50)
        results = run_distributed(
            MACHINE, ["poison"], _deadly_runner({"poison": None}),
            workers=1, retry_policy=policy, strict=False,
            prior_deaths={0: 4})
        assert results[0].poisoned
        assert "killed 5 worker(s)" in results[0].error

    def test_hang_watchdog_abandons_silent_worker(self):
        """A worker stuck in one case past the timeout is written off;
        its job is retried on a replacement and still completes."""
        attempts = {}

        def runner(machine, payload):
            attempts[payload] = attempts.get(payload, 0) + 1
            if payload == "hang" and attempts[payload] == 1:
                time.sleep(0.8)
            return f"done:{payload}"

        hung = []
        results = run_distributed(
            MACHINE, ["a", "hang", "b"], runner, workers=2,
            max_job_retries=3, hang_timeout=0.15, hung_out=hung)
        assert [r.outcome for r in results] == ["done:a", "done:hang",
                                                "done:b"]
        assert len(hung) == 1
        hang_result = results[1]
        assert hang_result.attempts == 1
        assert hang_result.last_fault_site == CAUSE_WORKER_DEATH

    def test_no_hang_timeout_means_no_watchdog(self):
        results = run_distributed(MACHINE, ["a", "b"],
                                  lambda machine, payload: payload,
                                  workers=2)
        assert [r.outcome for r in results] == ["a", "b"]


@needs_fork
class TestProcessSupervision:
    def test_poison_pair_quarantined(self):
        plan = FaultPlan(seed=0, rates={SITE_WORKER_KILL: 1.0})
        policy = RetryPolicy(poison_after=2, default_budget=50)
        report = run_sharded(MACHINE, ["only"],
                             lambda machine, payload: payload,
                             workers=1, faults=plan, retry_policy=policy,
                             strict=False)
        result = report.results[0]
        assert result.poisoned
        assert "poisoned: killed 2 worker(s)" in result.error
        assert plan.stats.accounted()
        assert plan.stats.poisoned_total > 0

    def test_hung_shard_reaped_and_job_retried(self, tmp_path):
        """A shard stuck on one job past the timeout is SIGKILLed; the
        job completes on a respawned shard."""
        flag = str(tmp_path / "already-hung")

        def runner(machine, payload):
            if payload == "hang" and not os.path.exists(flag):
                with open(flag, "w") as handle:
                    handle.write("x")
                time.sleep(30.0)
            return f"done:{payload}"

        report = run_sharded(MACHINE, ["a", "hang", "b"], runner,
                             workers=2, max_job_retries=3,
                             hang_timeout=0.5)
        assert [r.outcome for r in report.results] \
            == ["done:a", "done:hang", "done:b"]
        assert len(report.hung_shards) == 1
        hang_result = report.results[1]
        assert hang_result.attempts == 1
        assert hang_result.last_fault_site == CAUSE_WORKER_DEATH


KERNEL_5_13 = MachineConfig(bugs=linux_5_13())


class TestPipelinePoisonAccounting:
    def test_crash_storm_quarantines_every_pair(self):
        """Thread-mode graceful degradation under quarantine: every job
        kills its worker, the policy poisons each pair after two deaths,
        and the campaign completes with balanced books."""
        plan = FaultPlan(seed=0, rates={SITE_WORKER_CRASH: 1.0})
        config = CampaignConfig(
            machine=KERNEL_5_13, corpus_size=6, strategy="rand",
            rand_budget=6, workers=2, faults=plan, diagnose=False,
            retry_policy=RetryPolicy(poison_after=2, default_budget=50))
        result = Kit(config).run()
        assert result.reports == []
        assert result.stats.outcomes == {"poisoned": 6}
        assert result.stats.poisoned_cases == 6
        assert result.stats.faults_poisoned_total() > 0
        assert result.stats.faults_accounted(), plan.stats.snapshot()
        assert result.bugs_found() == set()

    @needs_fork
    def test_kill_storm_quarantines_every_pair_process_mode(self):
        plan = FaultPlan(seed=0, rates={SITE_WORKER_KILL: 1.0})
        config = CampaignConfig(
            machine=KERNEL_5_13, corpus_size=6, strategy="rand",
            rand_budget=6, workers=2, shard_mode="process", faults=plan,
            diagnose=False,
            retry_policy=RetryPolicy(poison_after=2, default_budget=50))
        result = Kit(config).run()
        assert result.reports == []
        assert result.stats.outcomes == {"poisoned": 6}
        assert result.stats.poisoned_cases == 6
        assert result.stats.faults_accounted(), plan.stats.snapshot()
        assert result.bugs_found() == set()
