"""Robustness fuzzing: the kernel surface must fail only through errno.

The executor's contract is that *any* program — including ones that pass
garbage arguments, dangle descriptors, or call syscalls in nonsensical
orders — produces a record per call, never an uncaught exception.  This
is the property a real syzkaller campaign leans on, so it is fuzzed here
with hypothesis over the declared surface *and* beyond it (wrong types,
out-of-domain values).
"""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus.program import Call, ConstArg, ResultArg, TestProgram
from repro.kernel import Kernel, linux_5_13
from repro.kernel.syscalls import DECLS
from repro.vm import Machine, MachineConfig
from repro.vm.executor import Executor

_NAMES = sorted(DECLS.names())
_GARBAGE_STRINGS = st.text(
    alphabet=string.ascii_letters + string.digits + "/._-", max_size=30)


@st.composite
def hostile_args(draw, index):
    """Arguments both in and out of every declared domain."""
    choice = draw(st.integers(0, 4))
    if choice == 0:
        return ConstArg(draw(st.integers(-2**31, 2**63)))
    if choice == 1:
        return ConstArg(draw(_GARBAGE_STRINGS))
    if choice == 2 and index > 0:
        return ResultArg(draw(st.integers(0, index - 1)))
    if choice == 3:
        return ConstArg(draw(st.sampled_from([0, -1, 3, 99, 2**32])))
    return ConstArg(draw(st.sampled_from(["/", "", "/proc", "/tmp/x", "r0"])))


@st.composite
def hostile_programs(draw):
    length = draw(st.integers(1, 7))
    calls = []
    for index in range(length):
        name = draw(st.sampled_from(_NAMES))
        decl = DECLS.get(name)
        arity = len(decl.args)
        # Sometimes the declared arity, sometimes deliberately wrong.
        if draw(st.booleans()):
            count = arity
        else:
            count = draw(st.integers(0, arity + 2))
        args = tuple(draw(hostile_args(index)) for __ in range(count))
        calls.append(Call(name, args))
    return TestProgram(calls)


class TestExecutorRobustness:
    @given(hostile_programs())
    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_hostile_programs_never_crash(self, program):
        kernel = Kernel(bugs=linux_5_13())
        task = kernel.spawn_task()
        result = Executor(kernel, task).run(program)
        assert len(result.records) == len(program)
        for record in result.live_records():
            assert record.retval >= 0 or record.errno > 0

    @given(hostile_programs())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_hostile_programs_keep_kernel_snapshotable(self, program):
        """After arbitrary abuse, the kernel must still snapshot/restore."""
        import pickle

        kernel = Kernel(bugs=linux_5_13())
        task = kernel.spawn_task()
        Executor(kernel, task).run(program)
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone.clock.ticks == kernel.clock.ticks

    @given(hostile_programs(), hostile_programs())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_hostile_pairs_survive_the_detector(self, sender, receiver):
        """The full detection pipeline tolerates arbitrary programs."""
        from repro.core import Detector, TestCase, default_specification

        machine = Machine(MachineConfig(bugs=linux_5_13()))
        detector = Detector(machine, default_specification())
        result = detector.check_case(TestCase(0, 1, sender, receiver))
        assert result.outcome is not None

    @given(hostile_programs())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_execution_is_deterministic_from_snapshot(self, program):
        machine = Machine(MachineConfig(bugs=linux_5_13()))
        machine.reset()
        first = machine.run("receiver", program)
        machine.reset()
        second = machine.run("receiver", program)
        for a, b in zip(first.records, second.records):
            if a is None or b is None:
                assert a is b
                continue
            assert (a.retval, a.errno, a.details) == \
                (b.retval, b.errno, b.details)
