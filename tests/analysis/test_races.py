"""The lockset race analyzer: joins, ranks, caches, rediscovery."""

from __future__ import annotations

import pytest

from repro.analysis import extract_access_map
from repro.analysis.accessmap import AccessMap, SyscallSummary
from repro.analysis.cache import AnalysisCache, file_digest
from repro.analysis.locations import (
    BROADCAST,
    GLOBAL,
    NAMESPACE,
    READ,
    TASK,
    WRITE,
    Access,
    StateLocation,
)
from repro.analysis.races import find_race_candidates, rediscover_races
from repro.analysis.sources import KernelSourceIndex
from repro.kernel.bugs import fixed_kernel, linux_5_13


@pytest.fixture(scope="module")
def index():
    return KernelSourceIndex()


@pytest.fixture(scope="module")
def clean_map(index):
    return extract_access_map(fixed_kernel(), index)


def _access(path, scope, kind, locks=(), line=1, guarded=False):
    return Access(location=StateLocation(path, scope), kind=kind,
                  file="src/x.py", line=line, function="f",
                  guarded=guarded, locks=tuple(locks))


def _map(**entries):
    return AccessMap(syscalls={
        name: SyscallSummary(name=name, accesses=tuple(accesses))
        for name, accesses in entries.items()
    })


# -- the join on synthetic handler pairs --------------------------------------

def test_exact_candidate_set_with_locksets():
    """Disjoint locksets pair; a shared lock proves mutual exclusion."""
    candidates = find_race_candidates(_map(
        alloc=[_access("kernel.ctr", GLOBAL, WRITE)],
        alloc_locked=[_access("kernel.ctr", GLOBAL, WRITE,
                              locks=("kernel.lock",))],
        reader=[_access("kernel.ctr", GLOBAL, READ)],
    ))
    pairs = {(c.entry_a, c.entry_b) for c in candidates}
    assert pairs == {
        ("alloc", "alloc"),                # two concurrent invocations
        ("alloc", "alloc_locked"),         # one side holds, one does not
        ("alloc", "reader"),
        ("alloc_locked", "reader"),
        # NOT (alloc_locked, alloc_locked): both hold kernel.lock.
        # NOT (reader, reader): no write on either side.
    }
    by_pair = {(c.entry_a, c.entry_b): c for c in candidates}
    # The unguarded global read carries an escape rule: boundary rank.
    assert by_pair[("alloc", "reader")].code == "R0"
    # Write/write pairs have no read-side escape fact: shared rank.
    assert by_pair[("alloc", "alloc")].code == "R1"


def test_same_lock_on_both_sides_is_dropped():
    candidates = find_race_candidates(_map(
        a=[_access("kernel.tbl", GLOBAL, WRITE, locks=("kernel.l",))],
        b=[_access("kernel.tbl", GLOBAL, READ, locks=("kernel.l",))],
    ))
    assert candidates == []


def test_namespace_scope_ranks_same_container():
    candidates = find_race_candidates(_map(
        a=[_access("ns:uts.hostname", NAMESPACE, WRITE)],
        b=[_access("ns:uts.hostname", NAMESPACE, READ)],
    ))
    assert {c.code for c in candidates} == {"R2"}


def test_task_scope_pairs_only_through_broadcast():
    """Two tasks' own structs are distinct; an enumeration aliases all."""
    candidates = find_race_candidates(_map(
        setter=[_access("task.nice", TASK, WRITE)],
        walker=[_access("task.nice", BROADCAST, READ)],
    ))
    pairs = {(c.entry_a, c.entry_b) for c in candidates}
    assert ("setter", "walker") in pairs
    assert ("setter", "setter") not in pairs


def test_fresh_allocations_never_pair():
    candidates = find_race_candidates(_map(
        a=[_access("new.Socket.ino", GLOBAL, WRITE)],
        b=[_access("new.Socket.ino", GLOBAL, READ)],
    ))
    assert candidates == []


def test_candidates_rank_then_sort_deterministically():
    candidates = find_race_candidates(_map(
        a=[_access("ns:x.v", NAMESPACE, WRITE),
           _access("kernel.g", GLOBAL, WRITE)],
        b=[_access("ns:x.v", NAMESPACE, READ),
           _access("kernel.g", GLOBAL, READ)],
    ))
    assert [c.rank for c in candidates] == sorted(c.rank for c in candidates)
    assert candidates == find_race_candidates(_map(
        a=[_access("ns:x.v", NAMESPACE, WRITE),
           _access("kernel.g", GLOBAL, WRITE)],
        b=[_access("ns:x.v", NAMESPACE, READ),
           _access("kernel.g", GLOBAL, READ)],
    ))


def test_render_shows_held_lockset_evidence():
    candidates = find_race_candidates(_map(
        a=[_access("kernel.ctr", GLOBAL, WRITE, locks=("kernel.lock",))],
        b=[_access("kernel.ctr", GLOBAL, READ)],
    ))
    assert len(candidates) == 1
    rendered = candidates[0].render()
    assert "kernel.lock" in rendered and "no lock" in rendered


# -- lockset annotations on the real kernel -----------------------------------

def test_kernel_map_carries_must_held_locksets(clean_map):
    """The KLock `with` blocks annotate the allocator accesses, and the
    annotation propagates through inlined helpers (unshare reaches the
    mount-id allocator via copy_mnt_ns with the lock held)."""
    held = {(entry, a.path, a.kind): a.locks
            for entry, s in clean_map.entries().items()
            for a in s.accesses if a.locks}
    assert held[("mount", "kernel.vfs.anon_dev_next", WRITE)] \
        == ("kernel.vfs.lock",)
    assert held[("unshare", "kernel.vfs.mnt_id_next", WRITE)] \
        == ("kernel.vfs.lock",)
    assert held[("socket", "kernel.net.unix.ino_next", WRITE)] \
        == ("kernel.net.unix.lock",)


def test_locked_allocator_pair_is_proven_exclusive(clean_map):
    """mount vs unshare both bump mnt_id_next under sb_lock: no
    candidate for that path; the unlocked diag read of the unix table
    still pairs with the locked socket insert."""
    candidates = find_race_candidates(clean_map)
    keyed = {(c.path, c.entry_a, c.entry_b) for c in candidates}
    assert ("kernel.vfs.mnt_id_next", "mount", "unshare") not in keyed
    assert any(path == "kernel.net.unix.by_ino"
               for path, *_ in keyed)


def test_summary_cache_is_deterministic(index):
    """Two independent extractions produce identical candidate sets —
    the interprocedural summary cache must not leak walk order into
    the annotations."""
    first = find_race_candidates(
        extract_access_map(linux_5_13(), index))
    second = find_race_candidates(
        extract_access_map(linux_5_13(), KernelSourceIndex()))
    assert [c.render() for c in first] == [c.render() for c in second]


# -- differential rediscovery -------------------------------------------------

def test_race_rediscovery_mirrors_escape_expectations(index):
    """Every statically detectable injected bug perturbs the candidate
    set (the 14/15 mirror of the escape lint's rediscovery)."""
    report = rediscover_races(index)
    assert report.matches_expectations()
    assert report.missed == ["msg_stat_global_pid"]  # value-level by design
    assert len(report.found) == len(report.per_bug) - 1


def test_race_rediscovery_hits_registered_paths(index):
    report = rediscover_races(index)
    for flag in ("ptype_leak", "uevent_broadcast_all_ns"):
        outcome = report.per_bug[flag]
        assert outcome.found and outcome.hit_expected_path, flag
    # The prio bug registers the enumeration structure (kernel.tasks);
    # the race join names the field the broadcast actually scribbles
    # on — finer-grained evidence, not a miss.
    prio = report.per_bug["prio_user_crosses_pidns"]
    assert prio.found
    assert {c.path for c in prio.candidates} == {"task.nice"}


# -- the incremental cache ----------------------------------------------------

def test_race_cache_roundtrip(tmp_path, clean_map, index):
    cache = AnalysisCache(str(tmp_path))
    paths = sorted(info.path for info in index.modules.values())
    candidates = find_race_candidates(clean_map)
    assert cache.get_races("fixed", paths) is None
    cache.put_races("fixed", paths, candidates)
    warmed = cache.get_races("fixed", paths)
    assert [c.render() for c in warmed] == [c.render() for c in candidates]
    assert [c.key() for c in warmed] == [c.key() for c in candidates]


def test_digest_flip_invalidates_only_that_module(tmp_path):
    """Per-module lint entries: editing one file re-runs only it."""
    import textwrap

    from repro.analysis.locks import check_lock_discipline

    clean = textwrap.dedent("""
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def put(self, k, v):
                with self._lock:
                    self._data[k] = v
        """)
    mod_a = tmp_path / "a.py"
    mod_b = tmp_path / "b.py"
    mod_a.write_text(clean)
    mod_b.write_text(clean)
    cache = AnalysisCache(str(tmp_path / "cache"))
    modules = [str(mod_a), str(mod_b)]

    assert check_lock_discipline(modules=modules, cache=cache) == []
    assert cache.misses == 2 and cache.hits == 0

    assert check_lock_discipline(modules=modules, cache=cache) == []
    assert cache.hits == 2 and cache.misses == 2

    # Edit b: introduce an unlocked read.  Only b re-analyzes.
    mod_b.write_text(clean + "\n    def size(self):\n"
                     "        return len(self._data)\n")
    findings = check_lock_discipline(modules=modules, cache=cache)
    assert cache.hits == 3 and cache.misses == 3
    assert [f.function for f in findings] == ["size"]

    # And the new result is itself cached.
    assert check_lock_discipline(modules=modules, cache=cache) == findings
    assert cache.hits == 5 and cache.misses == 3


def test_file_digest_flips_on_edit(tmp_path):
    target = tmp_path / "f.txt"
    target.write_text("one")
    before = file_digest(str(target))
    target.write_text("two")
    assert file_digest(str(target)) != before
    assert file_digest(str(tmp_path / "missing.txt")) == ""


def test_access_map_cache_roundtrip(tmp_path, clean_map, index):
    cache = AnalysisCache(str(tmp_path))
    paths = sorted(info.path for info in index.modules.values())
    cache.put_access_map("fixed", paths, clean_map)
    warmed = cache.get_access_map("fixed", paths)
    assert warmed is not None
    assert set(warmed.entries()) == set(clean_map.entries())
    assert [str(a) for a in warmed.syscalls["mount"].accesses] \
        == [str(a) for a in clean_map.syscalls["mount"].accesses]
    assert find_race_candidates(warmed)[0].render() \
        == find_race_candidates(clean_map)[0].render()
