"""The static candidate-pair pre-filter and its generator integration."""

from __future__ import annotations

import pytest

from repro.analysis.prefilter import (
    PrefilterStats,
    StaticPreFilter,
    _scopes_collide,
)
from repro.analysis.locations import BROADCAST, GLOBAL, INIT, NAMESPACE, TASK
from repro.core.clustering import strategy_by_name
from repro.core.generation import TestCaseGenerator
from repro.core.profile import Profiler
from repro.core.spec import default_specification
from repro.corpus.program import prog
from repro.corpus.seeds import seed_programs
from repro.kernel.bugs import linux_5_13


@pytest.fixture(scope="module")
def prefilter():
    return StaticPreFilter(bugs=linux_5_13())


@pytest.fixture(scope="module")
def seeds():
    return seed_programs()


class TestScopeCollision:
    def test_broadcast_meets_anything(self):
        assert _scopes_collide(BROADCAST, TASK)
        assert _scopes_collide(NAMESPACE, BROADCAST)

    def test_init_state_is_one_instance(self):
        assert _scopes_collide(INIT, GLOBAL)
        assert _scopes_collide(INIT, INIT)
        assert not _scopes_collide(INIT, TASK)

    def test_namespace_private_unless_global(self):
        assert _scopes_collide(GLOBAL, GLOBAL)
        assert not _scopes_collide(NAMESPACE, NAMESPACE)
        assert not _scopes_collide(GLOBAL, NAMESPACE)
        assert not _scopes_collide(TASK, TASK)


class TestVerdicts:
    def test_keeps_the_sockstat_global_channel(self, prefilter, seeds):
        """Bug #5: socket creation bumps a global counter the sockstat
        render reads — the pair must survive the filter."""
        assert prefilter.may_interfere(seeds["tcp_socket"],
                                       seeds["read_sockstat"])

    def test_prunes_disjoint_pairs(self, prefilter, seeds):
        """getpid touches only task state; no channel to sockstat."""
        assert not prefilter.may_interfere(prog(("getpid",)),
                                           seeds["read_sockstat"])
        assert not prefilter.may_interfere(seeds["tcp_socket"],
                                           prog(("getpid",)))

    def test_non_constant_descriptor_is_conservative(self, prefilter, seeds):
        """A read through a descriptor the filter cannot trace to a
        constant producer must be kept."""
        mystery = prog(("dup", 0), ("pread64", "r0", 4096, 0))
        assert prefilter.may_interfere(seeds["tcp_socket"], mystery)

    def test_unknown_syscall_is_conservative(self, prefilter, seeds):
        unknown = prog(("not_a_syscall", 1))
        assert prefilter.may_interfere(unknown, seeds["read_sockstat"])
        assert prefilter.may_interfere(seeds["tcp_socket"], unknown)

    def test_verdicts_are_memoized(self, seeds):
        filt = StaticPreFilter(bugs=linux_5_13())
        a, b = seeds["tcp_socket"], seeds["read_sockstat"]
        first = filt.may_interfere(a, b)
        assert filt._verdicts[(a.hash_hex, b.hash_hex)] == first
        assert filt.may_interfere(a, b) == first


class TestStats:
    def test_rate_precision_recall(self):
        stats = PrefilterStats(pairs_total=10, pairs_pruned=4,
                               static_pairs=8, dynamic_pairs=5,
                               static_and_dynamic=4)
        assert stats.pruned_rate() == pytest.approx(0.4)
        assert stats.precision() == pytest.approx(0.5)
        assert stats.recall() == pytest.approx(0.8)

    def test_empty_stats_are_safe(self):
        stats = PrefilterStats()
        assert stats.pruned_rate() == 0.0
        assert stats.precision() == 0.0
        assert stats.recall() == 1.0  # nothing dynamic to miss


class TestGeneratorIntegration:
    @pytest.fixture(scope="class")
    def profiled(self, seeds):
        from repro.vm import Machine, MachineConfig

        machine = Machine(MachineConfig(bugs=linux_5_13()))
        corpus = [seeds["tcp_socket"], seeds["read_sockstat"],
                  seeds["udp_send"], seeds["socket_cookie"],
                  seeds["packet_socket"], seeds["read_ptype"],
                  seeds["prio_set_user"], seeds["prio_get"]]
        profiles = Profiler(machine).profile_corpus(corpus)
        return corpus, profiles

    def test_prefiltered_generation_reports_stats(self, profiled):
        corpus, profiles = profiled
        generator = TestCaseGenerator(
            corpus, profiles, default_specification(),
            prefilter=StaticPreFilter(bugs=linux_5_13()))
        result = generator.generate(strategy_by_name("df-ia"))
        assert result.prefilter is not None
        assert result.prefilter.pairs_total > 0
        assert 0 <= result.prefilter.pairs_pruned <= result.prefilter.pairs_total

    def test_prefilter_preserves_real_channels(self, profiled):
        """Pruning only drops pairs; every kept pair also exists in the
        unfiltered run, and the known-bug pairs all survive."""
        corpus, profiles = profiled
        spec = default_specification()
        plain = TestCaseGenerator(corpus, profiles, spec)
        filtered = TestCaseGenerator(
            corpus, profiles, spec,
            prefilter=StaticPreFilter(bugs=linux_5_13()))
        strategy = strategy_by_name("df-ia")
        plain_pairs = {c.pair for c in plain.generate(strategy).test_cases}
        kept_pairs = {c.pair for c in filtered.generate(strategy).test_cases}
        assert kept_pairs <= plain_pairs
        # tcp_socket -> read_sockstat is the bug-#5 channel.
        assert (0, 1) in kept_pairs

    def test_without_prefilter_no_stats(self, profiled):
        corpus, profiles = profiled
        generator = TestCaseGenerator(corpus, profiles,
                                      default_specification())
        result = generator.generate(strategy_by_name("df-ia"))
        assert result.prefilter is None
