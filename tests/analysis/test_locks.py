"""The flow- and alias-aware lock-discipline checker (L1/L2/S1)."""

from __future__ import annotations

import textwrap

from repro.analysis.locks import check_lock_discipline
from repro.analysis.locksets import LintSuppression


def _check(tmp_path, source):
    module = tmp_path / "mod.py"
    module.write_text(textwrap.dedent(source))
    return check_lock_discipline(modules=[str(module)])


def test_clean_class_discipline(tmp_path):
    findings = _check(tmp_path, """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def put(self, key, value):
                with self._lock:
                    self._data[key] = value

            def get(self, key):
                with self._lock:
                    return self._data.get(key)
        """)
    assert findings == []


def test_unlocked_read_is_flagged(tmp_path):
    findings = _check(tmp_path, """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def put(self, key, value):
                with self._lock:
                    self._data[key] = value

            def size(self):
                return len(self._data)
        """)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.name == "self._data"
    assert finding.lock == "self._lock"
    assert finding.function == "size"
    assert finding.kind == "read"
    assert "size" in finding.message


def test_unlocked_mutation_is_flagged(tmp_path):
    findings = _check(tmp_path, """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self):
                with self._lock:
                    self.count += 1

            def race(self):
                self.count += 1
        """)
    assert [f.function for f in findings] == ["race"]
    assert findings[0].kind == "write"


def test_init_and_fresh_containers_are_exempt(tmp_path):
    findings = _check(tmp_path, """
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}
                self._data["seed"] = 1  # pre-publication: fine

            def reset(self):
                with self._lock:
                    self._data.clear()

            def add(self, k, v):
                with self._lock:
                    self._data[k] = v
        """)
    assert findings == []


def test_unguarded_structures_are_ignored(tmp_path):
    """Attributes never mutated under the lock have no guard to violate."""
    findings = _check(tmp_path, """
        import threading

        class Half:
            def __init__(self):
                self._lock = threading.Lock()
                self._config = {}
                self._data = {}

            def add(self, k, v):
                with self._lock:
                    self._data[k] = v

            def option(self, k):
                return self._config.get(k)

            def peek(self, k):
                with self._lock:
                    return self._data.get(k)
        """)
    assert findings == []


def test_function_local_lock_with_closure(tmp_path):
    findings = _check(tmp_path, """
        import threading

        def driver(jobs):
            results = {}
            lock = threading.Lock()

            def worker(job):
                with lock:
                    results[job] = run(job)

            for job in jobs:
                worker(job)
            return list(results.values())
        """)
    assert len(findings) == 1
    assert findings[0].name == "results"
    assert findings[0].lock == "lock"


def test_mutating_method_establishes_guard(tmp_path):
    findings = _check(tmp_path, """
        import threading

        class Log:
            def __init__(self):
                self._lock = threading.Lock()
                self._lines = []

            def add(self, line):
                with self._lock:
                    self._lines.append(line)

            def dump(self):
                return list(self._lines)
        """)
    assert [f.function for f in findings] == ["dump"]


def test_repo_modules_are_clean():
    """The pipeline's shared structures keep the lock discipline —
    including the shard-pool supervisor and the shared-memory store."""
    assert check_lock_discipline() == []


# -- flow: acquire()/release() ------------------------------------------------

def test_acquire_release_flow_counts_as_held(tmp_path):
    findings = _check(tmp_path, """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def put(self, key, value):
                with self._lock:
                    self._data[key] = value

            def flush(self):
                self._lock.acquire()
                self._data.clear()
                self._lock.release()
                return None
        """)
    assert findings == []


def test_access_after_release_is_flagged(tmp_path):
    findings = _check(tmp_path, """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def put(self, key, value):
                with self._lock:
                    self._data[key] = value

            def flush(self):
                self._lock.acquire()
                self._data.clear()
                self._lock.release()
                return len(self._data)
        """)
    assert [f.code for f in findings] == ["L1"]
    assert findings[0].function == "flush"


# -- L2: aliases and helpers --------------------------------------------------

def test_alias_access_without_lock_is_l2(tmp_path):
    findings = _check(tmp_path, """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def put(self, key, value):
                with self._lock:
                    self._data[key] = value

            def drain(self):
                view = self._data
                return view.pop("k")
        """)
    codes = {(f.code, f.name) for f in findings}
    assert ("L2", "self._data") in codes
    alias = next(f for f in findings if f.code == "L2")
    assert "alias 'view'" in alias.message
    assert alias.lock == "self._lock"


def test_copy_does_not_alias(tmp_path):
    findings = _check(tmp_path, """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def put(self, key, value):
                with self._lock:
                    self._data[key] = value

            def snapshot(self):
                with self._lock:
                    copy = dict(self._data)
                return copy.keys()
        """)
    assert findings == []


def test_helper_covered_by_all_call_sites_is_clean(tmp_path):
    """A private helper whose every caller holds the lock does not
    need to retake it — the flow-aware relaxation of the lexical rule."""
    findings = _check(tmp_path, """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def put(self, key, value):
                with self._lock:
                    self._data[key] = value
                    self._evict()

            def purge(self):
                with self._lock:
                    self._evict()

            def _evict(self):
                while len(self._data) > 8:
                    self._data.popitem()
        """)
    assert findings == []


def test_helper_reached_without_lock_is_l2(tmp_path):
    findings = _check(tmp_path, """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def put(self, key, value):
                with self._lock:
                    self._data[key] = value
                    self._evict()

            def racy(self):
                self._evict()

            def _evict(self):
                while len(self._data) > 8:
                    self._data.popitem()
        """)
    assert findings and all(f.code == "L2" for f in findings)
    assert {f.function for f in findings} == {"_evict"}
    assert "helper" in findings[0].message


def test_lock_context_propagates_through_helper_chains(tmp_path):
    """Entry contexts reach a fixpoint through helper-to-helper calls."""
    findings = _check(tmp_path, """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def put(self, key, value):
                with self._lock:
                    self._data[key] = value
                    self._trim()

            def _trim(self):
                self._drop_one()

            def _drop_one(self):
                self._data.popitem()
        """)
    assert findings == []


# -- suppressions -------------------------------------------------------------

def test_vetted_suppression_drops_the_finding(tmp_path):
    source = """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def put(self, key, value):
                with self._lock:
                    self._data[key] = value

            def size(self):
                return len(self._data)
        """
    module = tmp_path / "mod.py"
    module.write_text(textwrap.dedent(source))
    flagged = check_lock_discipline(modules=[str(module)])
    assert len(flagged) == 1
    silenced = check_lock_discipline(
        modules=[str(module)],
        suppressions=(LintSuppression(file="mod.py", name="self._data",
                                      function="size", code="L1",
                                      reason="test"),))
    assert silenced == []


# -- S1: shared-memory segment lifecycle --------------------------------------

def test_s1_flags_unprotected_creation(tmp_path):
    findings = _check(tmp_path, """
        from multiprocessing import shared_memory

        def publish(name, payload):
            seg = shared_memory.SharedMemory(name=name, create=True,
                                             size=len(payload))
            seg.buf[:len(payload)] = payload
            seg.close()
        """)
    assert [f.code for f in findings] == ["S1"]
    assert findings[0].name == "seg"
    assert "may leak" in findings[0].message


def test_s1_accepts_try_finally_lifecycle(tmp_path):
    findings = _check(tmp_path, """
        from multiprocessing import shared_memory

        def publish(name, payload):
            try:
                seg = shared_memory.SharedMemory(name=name, create=True,
                                                 size=len(payload))
            except FileExistsError:
                return False
            try:
                seg.buf[:len(payload)] = payload
            finally:
                seg.close()
            return True
        """)
    assert findings == []


def test_s1_flags_never_settled_segment(tmp_path):
    findings = _check(tmp_path, """
        from multiprocessing import shared_memory

        def leak(name):
            seg = shared_memory.SharedMemory(name=name, create=True,
                                             size=64)
        """)
    assert [f.code for f in findings] == ["S1"]
    assert "never closed" in findings[0].message


def test_s1_accepts_handoff_to_tracked_owner(tmp_path):
    findings = _check(tmp_path, """
        from multiprocessing import shared_memory

        class Store:
            def __init__(self):
                self._open = {}

            def create(self, name):
                seg = shared_memory.SharedMemory(name=name, create=True,
                                                 size=64)
                self._open[name] = seg
                return seg
        """)
    assert findings == []


def test_s1_ignores_attach_without_create(tmp_path):
    findings = _check(tmp_path, """
        from multiprocessing import shared_memory

        def attach(name):
            seg = shared_memory.SharedMemory(name=name)
            value = bytes(seg.buf[:4])
            seg.close()
            return value
        """)
    assert findings == []
