"""The lexical lock-discipline checker."""

from __future__ import annotations

import textwrap

from repro.analysis.locks import check_lock_discipline


def _check(tmp_path, source):
    module = tmp_path / "mod.py"
    module.write_text(textwrap.dedent(source))
    return check_lock_discipline(modules=[str(module)])


def test_clean_class_discipline(tmp_path):
    findings = _check(tmp_path, """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def put(self, key, value):
                with self._lock:
                    self._data[key] = value

            def get(self, key):
                with self._lock:
                    return self._data.get(key)
        """)
    assert findings == []


def test_unlocked_read_is_flagged(tmp_path):
    findings = _check(tmp_path, """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}

            def put(self, key, value):
                with self._lock:
                    self._data[key] = value

            def size(self):
                return len(self._data)
        """)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.name == "self._data"
    assert finding.lock == "self._lock"
    assert finding.function == "size"
    assert finding.kind == "read"
    assert "size" in finding.message


def test_unlocked_mutation_is_flagged(tmp_path):
    findings = _check(tmp_path, """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self):
                with self._lock:
                    self.count += 1

            def race(self):
                self.count += 1
        """)
    assert [f.function for f in findings] == ["race"]
    assert findings[0].kind == "write"


def test_init_and_fresh_containers_are_exempt(tmp_path):
    findings = _check(tmp_path, """
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}
                self._data["seed"] = 1  # pre-publication: fine

            def reset(self):
                with self._lock:
                    self._data.clear()

            def add(self, k, v):
                with self._lock:
                    self._data[k] = v
        """)
    assert findings == []


def test_unguarded_structures_are_ignored(tmp_path):
    """Attributes never mutated under the lock have no guard to violate."""
    findings = _check(tmp_path, """
        import threading

        class Half:
            def __init__(self):
                self._lock = threading.Lock()
                self._config = {}
                self._data = {}

            def add(self, k, v):
                with self._lock:
                    self._data[k] = v

            def option(self, k):
                return self._config.get(k)

            def peek(self, k):
                with self._lock:
                    return self._data.get(k)
        """)
    assert findings == []


def test_function_local_lock_with_closure(tmp_path):
    findings = _check(tmp_path, """
        import threading

        def driver(jobs):
            results = {}
            lock = threading.Lock()

            def worker(job):
                with lock:
                    results[job] = run(job)

            for job in jobs:
                worker(job)
            return list(results.values())
        """)
    assert len(findings) == 1
    assert findings[0].name == "results"
    assert findings[0].lock == "lock"


def test_mutating_method_establishes_guard(tmp_path):
    findings = _check(tmp_path, """
        import threading

        class Log:
            def __init__(self):
                self._lock = threading.Lock()
                self._lines = []

            def add(self, line):
                with self._lock:
                    self._lines.append(line)

            def dump(self):
                return list(self._lines)
        """)
    assert [f.function for f in findings] == ["dump"]


def test_repo_modules_are_clean():
    """The pipeline's shared structures keep the lexical discipline."""
    assert check_lock_discipline() == []
