"""Static access-map extraction: structure and bug-flag folding."""

from __future__ import annotations

import pytest

from repro.analysis import extract_access_map
from repro.analysis.accessmap import (
    discover_handlers,
    discover_proc_keys,
)
from repro.analysis.locations import GLOBAL, SHARED_SCOPES
from repro.analysis.sources import KernelSourceIndex
from repro.kernel.bugs import fixed_kernel, linux_5_13
from repro.kernel.syscalls.table import HANDLERS


@pytest.fixture(scope="module")
def index():
    return KernelSourceIndex()


@pytest.fixture(scope="module")
def clean_map(index):
    return extract_access_map(fixed_kernel(), index)


@pytest.fixture(scope="module")
def buggy_map(index):
    return extract_access_map(linux_5_13(), index)


def test_discovers_every_registered_handler(index):
    assert set(discover_handlers(index)) == set(HANDLERS)


def test_discovers_proc_keys(index):
    read_keys = discover_proc_keys(index, "render")
    assert "net/ptype" in read_keys
    assert "net/sockstat" in read_keys
    write_keys = discover_proc_keys(index, "write")
    assert write_keys  # at least the sysctl files
    assert set(write_keys) <= set(read_keys) | set(write_keys)


def test_every_entry_has_a_summary(clean_map):
    assert set(clean_map.syscalls) == set(HANDLERS)
    for key in discover_proc_keys(KernelSourceIndex(), "render"):
        assert key in clean_map.proc_reads


def test_access_fields_are_populated(clean_map):
    summary = clean_map.syscalls["sethostname"]
    assert summary.accesses
    access = summary.accesses[0]
    assert access.path
    assert access.kind in ("read", "write")
    assert ":" in access.site()  # file:line
    assert access.function


def test_bug_folding_changes_the_map(clean_map, buggy_map):
    """The buggy kernel's sockstat render reads the global counter; the
    fixed kernel's reads the per-namespace one."""
    buggy_paths = {a.path
                   for a in buggy_map.proc_reads["net/sockstat"].accesses}
    clean_paths = {a.path
                   for a in clean_map.proc_reads["net/sockstat"].accesses}
    assert "kernel.net.sockets_used_global" in buggy_paths
    assert "kernel.net.sockets_used_global" not in clean_paths


def test_shared_scope_accesses_exist(buggy_map):
    shared = [a for s in buggy_map.entries().values()
              for a in s.accesses if a.scope in SHARED_SCOPES]
    assert shared
    assert any(a.scope == GLOBAL for a in shared)


def test_union_mode_over_approximates_both_versions(index, clean_map,
                                                    buggy_map):
    union_map = extract_access_map(None, index)
    union_paths = set(union_map.paths())
    assert set(clean_map.paths()) <= union_paths
    assert set(buggy_map.paths()) <= union_paths
