"""The namespace-escape lint and the differential bug rediscovery."""

from __future__ import annotations

import pytest

from repro.analysis import extract_access_map
from repro.analysis.escape import (
    DEFAULT_SUPPRESSIONS,
    EscapeLinter,
    Suppression,
    declared_kinds,
    proc_key_kind,
    rediscover_bugs,
)
from repro.analysis.sources import KernelSourceIndex
from repro.kernel.bugs import BUG_SPECS, BugFlags, bug_spec, fixed_kernel


@pytest.fixture(scope="module")
def index():
    return KernelSourceIndex()


@pytest.fixture(scope="module")
def clean_map(index):
    return extract_access_map(fixed_kernel(), index)


def test_clean_kernel_lints_clean(clean_map):
    """No unsuppressed findings on the fully patched kernel."""
    linter = EscapeLinter(clean_map)
    assert linter.unsuppressed() == []


def test_suppressions_cover_allocator_pattern(clean_map):
    """The clean kernel's only candidates are the documented fresh-id
    allocators — visible when suppressions are disabled."""
    linter = EscapeLinter(clean_map, suppressions=())
    paths = {f.access.path for f in linter.unsuppressed()}
    assert paths == {s.path for s in DEFAULT_SUPPRESSIONS}


def test_findings_carry_location_and_spec_entries(index):
    buggy = extract_access_map(BugFlags(ptype_leak=True), index)
    findings = EscapeLinter(buggy).unsuppressed()
    ptype = [f for f in findings
             if f.access.path == "kernel.ptype.ptype_all"]
    assert ptype
    finding = ptype[0]
    assert finding.rule in ("E1", "E2", "E3")
    assert "src/repro/kernel" in finding.access.site()
    assert finding.spec_entries  # why the entry is protected
    assert finding.entry in finding.message


def test_unprotected_entries_are_not_linted(clean_map):
    """Rule findings require the spec to select the entry."""
    linter = EscapeLinter(clean_map)
    for finding in linter.run():
        assert linter.spec_entries_for(finding.entry)


def test_custom_suppression_narrows_by_function(index):
    buggy = extract_access_map(BugFlags(ptype_leak=True), index)
    base = EscapeLinter(buggy).unsuppressed()
    target = [f for f in base if f.access.path == "kernel.ptype.ptype_all"]
    assert target
    extra = tuple(DEFAULT_SUPPRESSIONS) + (
        Suppression("kernel.ptype.ptype_all",
                    function=target[0].access.function,
                    reason="test"),
    )
    silenced = EscapeLinter(buggy, suppressions=extra).unsuppressed()
    assert not any(f.access.path == "kernel.ptype.ptype_all"
                   for f in silenced)


def test_proc_key_kinds():
    assert proc_key_kind("net/ptype") == "fd_proc_net"
    assert proc_key_kind("sys/net/ipv4/ip_forward") == "fd_proc_sys_net"
    assert proc_key_kind("sys/kernel/hostname") == "fd_proc_sys_kernel"
    assert proc_key_kind("sys/vm/swappiness") == "fd_proc_sys"
    assert proc_key_kind("meminfo") == "fd_proc"


def test_declared_kinds():
    assert "sock" in declared_kinds("socket")
    assert declared_kinds("getpid") == set()
    assert declared_kinds("no_such_syscall") == set()


# -- rediscovery (the ISSUE's >=60% acceptance bar) -------------------------

@pytest.fixture(scope="module")
def rediscovery(index):
    return rediscover_bugs(index)


def test_bug_specs_cover_every_flag():
    import dataclasses
    flags = {f.name for f in dataclasses.fields(BugFlags)}
    assert {s.flag for s in BUG_SPECS} == flags
    assert bug_spec("ptype_leak").state_path == "kernel.ptype.ptype_all"
    with pytest.raises(KeyError):
        bug_spec("no_such_bug")


def test_rediscovery_rate_over_60_percent(rediscovery):
    assert rediscovery.rate() >= 0.6


def test_rediscovery_matches_registry_expectations(rediscovery):
    """Every statically detectable bug is found; only the value-level
    bug (msg_stat_global_pid) is missed, by design."""
    assert rediscovery.matches_expectations()
    assert rediscovery.missed == ["msg_stat_global_pid"]


def test_rediscovery_hits_registered_state_paths(rediscovery):
    """For found bugs, at least one finding names the canonical path
    from the registry (the path-level root cause)."""
    hits = [flag for flag, r in rediscovery.per_bug.items()
            if r.found and r.hit_expected_path]
    # The vast majority pinpoint the exact registered path.
    assert len(hits) >= 10
