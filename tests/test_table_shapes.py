"""Standalone table-shape assertions: `pytest tests/` alone must verify
the paper's qualitative claims, independent of the benchmark harness.

Each class mirrors one evaluation table at a reduced scale (see
EXPERIMENTS.md for the full paper-vs-measured discussion; the
benchmarks regenerate the actual tables).
"""

import pytest

from repro.core import (
    Detector,
    Profiler,
    TestCaseGenerator,
    default_specification,
    strategy_by_name,
)
from repro.core.known_bugs import SCENARIOS, TABLE3_ROWS, reproduce_known_bug
from repro.core.oracle import classify_all
from repro.core.pipeline import CampaignConfig, Kit
from repro.corpus import build_corpus
from repro.kernel import linux_5_13
from repro.kernel.namespaces import ISOLATED_RESOURCE, NamespaceType
from repro.vm import Machine, MachineConfig

_NUMBERED = set("123456789")


@pytest.fixture(scope="module")
def corpus():
    # 200 matches the benchmark calibration (benchmarks/support.py):
    # large enough that timing-noise candidates reach execution.
    return build_corpus(200, seed=1)


@pytest.fixture(scope="module")
def campaign(corpus):
    config = CampaignConfig(machine=MachineConfig(bugs=linux_5_13()),
                            corpus=list(corpus))
    return Kit(config).run()


class TestTable1Shape:
    def test_eight_namespace_types(self):
        assert len(list(NamespaceType)) == 8
        assert len(ISOLATED_RESOURCE) == 8


class TestTable2Shape:
    def test_nine_bugs_found(self, campaign):
        assert _NUMBERED <= campaign.bugs_found()

    def test_every_bug_diagnosed_to_a_culprit_pair(self, campaign):
        for report in campaign.reports:
            if classify_all(report) & _NUMBERED:
                assert report.culprit_pairs


class TestTable3Shape:
    def test_five_of_seven_detected(self):
        detected = sum(reproduce_known_bug(bug_id).detected
                       for bug_id in SCENARIOS)
        assert detected == len(TABLE3_ROWS) == 5


class TestTable4Shape:
    def test_cluster_counts_grow_with_context(self, corpus):
        machine = Machine(MachineConfig(bugs=linux_5_13()))
        profiles = Profiler(machine).profile_corpus(corpus)
        generator = TestCaseGenerator(corpus, profiles,
                                      default_specification())
        counts = [generator.generate(strategy_by_name(name)).cluster_count
                  for name in ("df-ia", "df-st-1", "df-st-2")]
        flows = generator.index.total_flow_count()
        assert counts == sorted(counts)
        assert flows > 10 * counts[-1], "DF must dwarf every clustering"

    def test_rand_is_a_strict_subset(self, corpus, campaign):
        budget = 8 * campaign.stats.cases_total
        config = CampaignConfig(machine=MachineConfig(bugs=linux_5_13()),
                                corpus=list(corpus), strategy="rand",
                                rand_budget=budget, diagnose=False)
        rand = Kit(config).run()
        assert rand.bugs_found() & _NUMBERED < _NUMBERED


class TestTable5Shape:
    def test_filtering_funnel_monotone(self, campaign):
        stats = campaign.stats
        assert stats.cases_total >= stats.initial_reports \
            >= stats.after_nondet >= stats.after_resource
        assert stats.after_resource == len(campaign.reports)

    def test_nondet_filter_does_work(self, campaign):
        assert campaign.stats.outcomes.get("nondet", 0) > 0


class TestTable6Shape:
    def test_aggregation_compresses(self, campaign):
        groups = campaign.groups
        assert groups.agg_r_count <= groups.agg_rs_count < \
            len(campaign.reports) + 1
        assert groups.agg_rs_count < campaign.stats.cases_total

    def test_most_bugs_collapse_to_few_groups(self, campaign):
        by_label = {}
        for (receiver_sig, __), members in campaign.groups.agg_rs.items():
            for member in members:
                for label in classify_all(member) & _NUMBERED:
                    by_label.setdefault(label, set()).add(receiver_sig)
        for label, receivers in by_label.items():
            assert len(receivers) <= 3, (label, receivers)


class TestSection65Shape:
    def test_four_profiling_runs_per_program(self, campaign):
        assert campaign.stats.profile_runs == 4 * campaign.stats.corpus_size

    def test_execution_throughput_positive(self, campaign):
        assert campaign.stats.executions_per_second() > 0
