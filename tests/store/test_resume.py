"""Crash/resume property: a resumed campaign equals an uninterrupted one.

The contract under test is the tentpole of the durable store: kill the
campaign at *any* journal position — every record boundary, and mid-way
through a torn record — then ``resume`` and the final bug sets, rendered
reports (culprit pairs included), and AGG-RS groups are identical to the
run that was never interrupted.  A light slice runs in tier-1; the full
seeds x kernels x chaos-seeds sweep is behind ``-m chaos``.
"""

from __future__ import annotations

import os

import pytest

from repro.core.detection import Outcome
from repro.core.known_bugs import (
    SCENARIOS,
    TABLE3_ROWS,
    scenario_machine_config,
)
from repro.core.pipeline import CampaignConfig, Kit
from repro.faults.plan import FaultPlan
from repro.kernel import linux_5_13
from repro.store import RECORD_CASE, CampaignJournal, scan
from repro.vm import fork_available
from repro.vm.machine import MachineConfig

CORPUS_SIZE = 10

KERNELS = {"5.13": MachineConfig(bugs=linux_5_13())}
KERNELS.update({row: scenario_machine_config(SCENARIOS[row])
                for row in TABLE3_ROWS})

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="process shards require fork")


def _config(store_dir, kernel_name="5.13", **overrides):
    overrides.setdefault("corpus_size", CORPUS_SIZE)
    return CampaignConfig(machine=KERNELS[kernel_name],
                          store_dir=store_dir, **overrides)


def _signature(result):
    """Everything resume must reproduce byte-for-byte."""
    return (sorted(result.bugs_found()),
            [report.render() for report in result.reports],
            result.groups.agg_rs_count,
            result.groups.agg_r_count,
            dict(result.stats.outcomes))


def _journal_path(store_dir, campaign_id):
    return os.path.join(store_dir, campaign_id, "journal.jsonl")


def _truncate_to(path, data, size):
    with open(path, "wb") as handle:
        handle.write(data[:size])


class TestResumeEverywhere:
    def test_kill_at_every_record_boundary(self, tmp_path):
        """The flagship property: for every prefix of the journal, a
        resumed run converges to the uninterrupted run's exact output."""
        store_dir = str(tmp_path)
        clean = Kit(_config(store_dir)).run()
        expected = _signature(clean)
        path = _journal_path(store_dir, clean.stats.campaign_id)
        with open(path, "rb") as handle:
            journal = handle.read()
        boundaries = [0]
        offset = 0
        for line in journal.splitlines(keepends=True):
            offset += len(line)
            boundaries.append(offset)
        assert len(boundaries) > CORPUS_SIZE  # begin + cases + end
        for size in boundaries:
            _truncate_to(path, journal, size)
            resumed = Kit(_config(store_dir, resume=True)).run()
            assert _signature(resumed) == expected, f"boundary {size}"
            restored = resumed.stats.resumed_cases
            assert restored + len(scan(path).by_type(RECORD_CASE)) \
                >= resumed.stats.cases_total

    def test_kill_mid_record_torn_write(self, tmp_path):
        """A crash half-way through a write leaves a torn line; resume
        repairs the tail and re-executes the lost pair."""
        store_dir = str(tmp_path)
        clean = Kit(_config(store_dir)).run()
        expected = _signature(clean)
        path = _journal_path(store_dir, clean.stats.campaign_id)
        with open(path, "rb") as handle:
            journal = handle.read()
        lines = journal.splitlines(keepends=True)
        for keep in (1, len(lines) // 2, len(lines) - 1):
            torn = b"".join(lines[:keep]) + lines[keep][:-7]
            with open(path, "wb") as handle:
                handle.write(torn)
            resumed = Kit(_config(store_dir, resume=True)).run()
            assert _signature(resumed) == expected, f"torn after {keep}"
            assert resumed.stats.journal_torn_bytes == len(lines[keep]) - 7

    def test_resume_completed_campaign_executes_nothing(self, tmp_path):
        store_dir = str(tmp_path)
        clean = Kit(_config(store_dir)).run()
        resumed = Kit(_config(store_dir, resume=True)).run()
        assert _signature(resumed) == _signature(clean)
        assert resumed.stats.resumed_cases == resumed.stats.cases_total
        assert resumed.stats.execution_workers == 0

    def test_resume_across_pool_shapes(self, tmp_path):
        """The fingerprint excludes perf knobs, so one journal resumes
        under any pool shape with identical output."""
        store_dir = str(tmp_path)
        clean = Kit(_config(store_dir)).run()
        expected = _signature(clean)
        path = _journal_path(store_dir, clean.stats.campaign_id)
        with open(path, "rb") as handle:
            journal = handle.read()
        lines = journal.splitlines(keepends=True)
        half = b"".join(lines[:len(lines) // 2])
        shapes = [{"workers": 3}]
        if fork_available():
            shapes.append({"workers": 3, "shard_mode": "process"})
        for shape in shapes:
            with open(path, "wb") as handle:
                handle.write(half)
            resumed = Kit(_config(store_dir, resume=True, **shape)).run()
            assert _signature(resumed) == expected, shape


class TestResumeInterleaved:
    def test_kill_and_resume_interleaved_campaign(self, tmp_path):
        """Byte parity for interleaved campaigns: culprit schedules and
        witness lists survive the journal, so a killed-and-resumed run
        renders the exact reports of the uninterrupted one."""
        from repro.core.race_scenarios import race_campaign_config

        store_dir = str(tmp_path)
        clean = Kit(race_campaign_config(store_dir=store_dir)).run()
        expected = _signature(clean)
        assert sorted(clean.bugs_found()) == ["T1", "T2", "T3"]
        assert all(report.culprit_schedule is not None
                   for report in clean.reports)
        path = _journal_path(store_dir, clean.stats.campaign_id)
        with open(path, "rb") as handle:
            journal = handle.read()
        lines = journal.splitlines(keepends=True)
        for keep in (1, len(lines) // 2, len(lines) - 1):
            with open(path, "wb") as handle:
                handle.write(b"".join(lines[:keep]))
            resumed = Kit(race_campaign_config(store_dir=store_dir,
                                               resume=True)).run()
            assert _signature(resumed) == expected, f"boundary {keep}"


class TestResumeChaos:
    def test_chaos_resume_finds_same_bugs(self, tmp_path):
        """Interrupt a faulted campaign and resume it under a fresh plan
        with the same signature: the bug set survives and the fault
        books balance in both halves."""
        baseline = Kit(_config(None)).run()
        store_dir = str(tmp_path)

        def plan():
            return FaultPlan(seed=1, rate=0.15)

        clean = Kit(_config(store_dir, faults=plan(), workers=2)).run()
        assert sorted(clean.bugs_found()) == sorted(baseline.bugs_found())
        path = _journal_path(store_dir, clean.stats.campaign_id)
        with open(path, "rb") as handle:
            journal = handle.read()
        lines = journal.splitlines(keepends=True)
        with open(path, "wb") as handle:
            handle.write(b"".join(lines[:len(lines) // 2]))
        resumed = Kit(_config(store_dir, resume=True, faults=plan(),
                              workers=2)).run()
        assert sorted(resumed.bugs_found()) == sorted(baseline.bugs_found())
        assert resumed.stats.faults_accounted()
        assert resumed.stats.resumed_cases > 0


class TestPoisonQuarantineDurability:
    def test_poisoned_record_survives_resume(self, tmp_path):
        """A pair journaled as poisoned is never offered to a worker
        again: the resumed run restores it as ``Outcome.POISONED``."""
        store_dir = str(tmp_path)
        clean = Kit(_config(store_dir)).run()
        path = _journal_path(store_dir, clean.stats.campaign_id)
        cases = scan(path).by_type(RECORD_CASE)
        victim = cases[-1]["k"]
        # Drop the victim's terminal record, then quarantine it the way
        # a crashed run's journal would.
        with open(path, "rb") as handle:
            journal = handle.read()
        kept = [line for line in journal.splitlines(keepends=True)
                if f'"{victim}"'.encode() not in line]
        with open(path, "wb") as handle:
            handle.write(b"".join(kept))
        with CampaignJournal(path) as journal_handle:
            journal_handle.append_poisoned(victim, 5, "killed 5 worker(s)")
        resumed = Kit(_config(store_dir, resume=True)).run()
        assert resumed.stats.poisoned_cases == 1
        assert resumed.stats.outcomes.get(Outcome.POISONED.value) == 1
        # Quarantine must subtract at most the victim from the bug set.
        assert set(resumed.bugs_found()) <= set(clean.bugs_found())


# -- the full sweep (deselected by default; run with -m chaos) ----------------


@pytest.mark.chaos
@pytest.mark.parametrize("seed", [1, 2])
@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
def test_resume_sweep_all_kernels(kernel_name, seed, tmp_path):
    """Boundary-kill + resume across corpus seeds and Table-3 kernels."""
    store_dir = str(tmp_path)
    clean = Kit(_config(store_dir, kernel_name, corpus_seed=seed)).run()
    expected = _signature(clean)
    path = _journal_path(store_dir, clean.stats.campaign_id)
    with open(path, "rb") as handle:
        journal = handle.read()
    lines = journal.splitlines(keepends=True)
    for keep in (1, len(lines) // 3, 2 * len(lines) // 3):
        with open(path, "wb") as handle:
            handle.write(b"".join(lines[:keep]))
        resumed = Kit(_config(store_dir, kernel_name, corpus_seed=seed,
                              resume=True)).run()
        assert _signature(resumed) == expected, (kernel_name, seed, keep)


@pytest.mark.chaos
@pytest.mark.parametrize("chaos_seed", [0, 1])
@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
def test_chaos_resume_sweep(kernel_name, chaos_seed, tmp_path):
    """Faulted run, interrupted and resumed, per kernel x chaos seed."""
    baseline = Kit(_config(None, kernel_name)).run()
    store_dir = str(tmp_path)
    plan = FaultPlan(seed=chaos_seed, rate=0.15)
    clean = Kit(_config(store_dir, kernel_name, faults=plan,
                        workers=2)).run()
    path = _journal_path(store_dir, clean.stats.campaign_id)
    with open(path, "rb") as handle:
        journal = handle.read()
    lines = journal.splitlines(keepends=True)
    with open(path, "wb") as handle:
        handle.write(b"".join(lines[:len(lines) // 2]))
    resumed = Kit(_config(store_dir, kernel_name, resume=True,
                          faults=FaultPlan(seed=chaos_seed, rate=0.15),
                          workers=2)).run()
    assert sorted(resumed.bugs_found()) == sorted(baseline.bugs_found())
    assert resumed.stats.faults_accounted()
