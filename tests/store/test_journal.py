"""Unit tests for the write-ahead campaign journal and the store layout."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.pipeline import CampaignConfig
from repro.faults.plan import (
    SITE_JOURNAL_TORN,
    SITE_STORE_FSYNC_FAIL,
    FaultPlan,
)
from repro.store import (
    RECORD_ATTEMPT,
    RECORD_BEGIN,
    RECORD_CASE,
    RECORD_END,
    RECORD_POISONED,
    CampaignJournal,
    CampaignStore,
    ResumeMismatchError,
    ResumeState,
    campaign_fingerprint,
    case_key,
    decode_line,
    encode_line,
    scan,
    summarize_config,
)


class TestLineCodec:
    def test_roundtrip(self):
        record = {"t": RECORD_CASE, "k": "a:b", "outcome": "pass"}
        assert decode_line(encode_line(record)) == record

    def test_missing_newline_is_torn(self):
        line = encode_line({"t": RECORD_CASE, "k": "a:b"})
        assert decode_line(line.rstrip("\n")) is None

    def test_bit_flip_rejected(self):
        line = encode_line({"t": RECORD_CASE, "k": "a:b", "outcome": "pass"})
        flipped = line.replace('"pass"', '"fail"')
        assert flipped != line
        assert decode_line(flipped) is None

    def test_garbage_rejected(self):
        assert decode_line("not json at all\n") is None
        assert decode_line('{"c": 1}\n') is None
        assert decode_line('{"c": 1, "r": [1, 2]}\n') is None

    def test_encoding_is_canonical(self):
        # Key order in the caller's dict must not change the line.
        a = encode_line({"t": RECORD_CASE, "k": "x"})
        b = encode_line({"k": "x", "t": RECORD_CASE})
        assert a == b


class TestScan:
    def _write(self, path, lines):
        with open(path, "w") as handle:
            handle.write("".join(lines))

    def test_longest_valid_prefix(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        lines = [encode_line({"t": RECORD_CASE, "k": str(i)})
                 for i in range(4)]
        torn = encode_line({"t": RECORD_CASE, "k": "torn"})[:10]
        self._write(path, lines + [torn])
        replay = scan(path)
        assert [r["k"] for r in replay.records] == ["0", "1", "2", "3"]
        assert replay.torn_bytes == len(torn)
        assert replay.valid_bytes == sum(len(l) for l in lines)

    def test_mid_file_corruption_discards_suffix(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        good = encode_line({"t": RECORD_CASE, "k": "good"})
        after = encode_line({"t": RECORD_CASE, "k": "after"})
        self._write(path, [good, "corrupted line\n", after])
        replay = scan(path)
        assert [r["k"] for r in replay.records] == ["good"]
        assert replay.torn_bytes == len("corrupted line\n") + len(after)

    def test_first_write_wins_dedup(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        first = encode_line({"t": RECORD_CASE, "k": "a:b", "outcome": "pass"})
        second = encode_line({"t": RECORD_CASE, "k": "a:b",
                              "outcome": "report"})
        self._write(path, [first, second])
        replay = scan(path)
        assert len(replay.records) == 1
        assert replay.records[0]["outcome"] == "pass"
        assert replay.duplicates == 1

    def test_missing_file_is_empty(self, tmp_path):
        replay = scan(str(tmp_path / "absent.jsonl"))
        assert replay.records == []
        assert replay.torn_bytes == 0


class TestCampaignJournal:
    def test_append_and_replay(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with CampaignJournal(path) as journal:
            assert journal.append_case("a:b", "pass", 0, None)
            assert journal.append_attempt("c:d", ["worker.crash"])
            assert journal.append_poisoned("c:d", 5, "killed 5 workers")
        records = scan(path).records
        assert [r["t"] for r in records] == [RECORD_CASE, RECORD_ATTEMPT,
                                             RECORD_POISONED]

    def test_open_repairs_torn_tail(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with CampaignJournal(path) as journal:
            journal.append_case("a:b", "pass", 0, None)
        size = os.path.getsize(path)
        torn = '{"c": 123, "r": {"t": "ca'
        with open(path, "a") as handle:
            handle.write(torn)  # a crash mid-write leaves this behind
        journal = CampaignJournal(path)
        assert journal.torn_bytes_repaired == len(torn)
        assert os.path.getsize(path) == size
        journal.close()

    def test_append_dedup_within_writer(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with CampaignJournal(path) as journal:
            assert journal.append_case("a:b", "pass", 0, None)
            assert not journal.append_case("a:b", "report", 1, None)
        assert scan(path).records[0]["outcome"] == "pass"

    def test_append_dedup_across_writers(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with CampaignJournal(path) as journal:
            journal.append_case("a:b", "pass", 0, None)
        with CampaignJournal(path) as journal:
            assert not journal.append_case("a:b", "report", 1, None)
            assert journal.append_case("c:d", "pass", 0, None)
        assert len(scan(path).records) == 2

    def test_torn_write_fault_absorbed(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        plan = FaultPlan(seed=0, rates={SITE_JOURNAL_TORN: 1.0})
        with CampaignJournal(path, faults=plan) as journal:
            for i in range(8):
                journal.append_case(f"k{i}:r", "pass", 0, None)
        # Every append tore once, repaired, and committed cleanly.
        records = scan(path).records
        assert [r["k"] for r in records] == [f"k{i}:r" for i in range(8)]
        injected, recovered, infra, poisoned = plan.stats.snapshot()
        assert injected[SITE_JOURNAL_TORN] == 8
        assert recovered[SITE_JOURNAL_TORN] == 8
        assert plan.stats.accounted()

    def test_fsync_fault_recovers_within_budget(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        plan = FaultPlan(seed=3, rates={SITE_STORE_FSYNC_FAIL: 0.5},
                         max_retries=5)
        with CampaignJournal(path, faults=plan) as journal:
            for i in range(20):
                journal.append_case(f"k{i}:r", "pass", 0, None)
            assert journal.fsync_degraded == 0
        injected, recovered, infra, poisoned = plan.stats.snapshot()
        assert injected.get(SITE_STORE_FSYNC_FAIL, 0) > 0
        assert infra.get(SITE_STORE_FSYNC_FAIL, 0) == 0
        assert plan.stats.accounted()

    def test_fsync_fault_degrades_when_budget_exhausted(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        plan = FaultPlan(seed=0, rates={SITE_STORE_FSYNC_FAIL: 1.0},
                         max_retries=2)
        with CampaignJournal(path, faults=plan) as journal:
            journal.append_case("a:b", "pass", 0, None)
            assert journal.fsync_degraded == 1
        # The record itself still committed (flushed-only durability).
        assert scan(path).records[-1]["k"] == "a:b"
        injected, recovered, infra, poisoned = plan.stats.snapshot()
        assert infra[SITE_STORE_FSYNC_FAIL] == 3  # budget + 1 charged
        assert plan.stats.accounted()


class TestResumeState:
    def test_from_records(self):
        records = [
            {"t": RECORD_BEGIN},
            {"t": RECORD_CASE, "k": "a:b", "outcome": "pass"},
            {"t": RECORD_ATTEMPT, "k": "c:d", "sites": []},
            {"t": RECORD_ATTEMPT, "k": "c:d", "sites": []},
            {"t": RECORD_POISONED, "k": "c:d", "deaths": 2},
        ]
        state = ResumeState.from_records(records)
        assert set(state.cases) == {"a:b"}
        assert state.deaths == {"c:d": 2}
        assert set(state.poisoned) == {"c:d"}
        assert not state.completed

    def test_end_record_marks_completed(self):
        state = ResumeState.from_records([{"t": RECORD_END}])
        assert state.completed


class TestFingerprint:
    def _config(self, **overrides):
        return CampaignConfig(**overrides)

    def test_perf_knobs_excluded(self):
        base = summarize_config(self._config())
        threaded = summarize_config(self._config(workers=4))
        process = summarize_config(self._config(workers=4,
                                                shard_mode="process",
                                                sender_cache=False))
        assert campaign_fingerprint(base) == campaign_fingerprint(threaded)
        assert campaign_fingerprint(base) == campaign_fingerprint(process)

    def test_result_affecting_knobs_included(self):
        base = campaign_fingerprint(summarize_config(self._config()))
        for overrides in ({"corpus_seed": 2}, {"corpus_size": 99},
                          {"strategy": "rand"}, {"diagnose": False},
                          {"faults": FaultPlan(seed=1, rate=0.1)}):
            other = campaign_fingerprint(
                summarize_config(self._config(**overrides)))
            assert other != base, overrides


class TestCampaignStore:
    def _open(self, root, **overrides):
        config = CampaignConfig(**overrides)
        return CampaignStore(root).open_campaign(
            summarize_config(config), resume=overrides.get("resume", False))

    def test_fresh_campaign_writes_begin_record(self, tmp_path):
        handle = self._open(str(tmp_path))
        handle.close()
        records = scan(os.path.join(handle.path, "journal.jsonl")).records
        assert records[0]["t"] == RECORD_BEGIN
        assert records[0]["fingerprint"] == handle.fingerprint

    def test_reopen_without_resume_archives_journal(self, tmp_path):
        first = self._open(str(tmp_path))
        first.journal.append_case("a:b", "pass", 0, None)
        first.close()
        second = self._open(str(tmp_path))
        second.close()
        assert second.resume_state.cases == {}
        assert os.path.exists(os.path.join(first.path, "journal.jsonl.1"))

    def test_resume_replays_prior_cases(self, tmp_path):
        config = CampaignConfig()
        store = CampaignStore(str(tmp_path))
        summary = summarize_config(config)
        first = store.open_campaign(summary)
        first.journal.append_case("a:b", "pass", 0, None)
        first.close()
        resumed = store.open_campaign(summary, resume=True)
        resumed.close()
        assert set(resumed.resume_state.cases) == {"a:b"}

    def test_resume_rejects_different_config(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        handle = store.open_campaign(summarize_config(CampaignConfig()))
        handle.close()
        other = summarize_config(CampaignConfig(corpus_seed=2))
        with pytest.raises(ResumeMismatchError):
            store.open_campaign(other, resume=True)

    def test_resume_nothing_to_resume(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        with pytest.raises(ResumeMismatchError):
            store.open_campaign(summarize_config(CampaignConfig()),
                                resume=True)

    def test_tampered_meta_rejected(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        summary = summarize_config(CampaignConfig())
        handle = store.open_campaign(summary)
        handle.close()
        meta = os.path.join(handle.path, "campaign.json")
        with open(meta) as fh:
            stored = json.load(fh)
        stored["fingerprint"] = "0" * 64
        with open(meta, "w") as fh:
            json.dump(stored, fh)
        with pytest.raises(ResumeMismatchError):
            store.open_campaign(summary, resume=True)

    def test_list_and_entry(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        handle = store.open_campaign(summarize_config(CampaignConfig()))
        handle.journal.append_case("a:b", "report", 2, {"x": 1})
        handle.journal.append_poisoned("c:d", 5, "boom")
        handle.journal.append({"t": RECORD_END, "accounting": {"bugs": []}})
        handle.close()
        entries = store.list_campaigns()
        assert [e.campaign_id for e in entries] == [handle.campaign_id]
        entry = store.entry(handle.campaign_id)
        assert entry.cases_done == 1
        assert entry.poisoned == 1
        assert entry.completed
        assert entry.status() == "completed"

    def test_case_key_shape(self):
        assert case_key("aa", "bb") == "aa:bb"
