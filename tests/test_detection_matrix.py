"""The systematic detection matrix: every modelled bug, both kernel states.

For each injected bug, the canonical (sender, receiver) seed pair must:

* produce a REPORT on a kernel with *only* that bug enabled, labelled by
  the oracle as that bug, and
* produce no report on the fully fixed kernel,

except for the two §6.2 bugs, whose expected outcome is the documented
non-detection mode.  This is the single most load-bearing test in the
repository: it pins the bug registry, the seeds, the detector, and the
oracle against each other, bug by bug.
"""

import pytest

from repro.core import Detector, Diagnoser, Outcome, TestCase, classify_all
from repro.core.spec import default_specification
from repro.corpus.seeds import seed_programs
from repro.kernel import BugFlags, fixed_kernel
from repro.vm import ContainerConfig, Machine, MachineConfig

#: label -> (flag, sender seed, receiver seed, sender-on-host)
MATRIX = {
    "1": ("ptype_leak", "packet_socket", "read_ptype", False),
    "2": ("flowlabel_exclusive_global", "flowlabel_register_exclusive",
          "flowlabel_send", False),
    "3": ("rds_bind_global", "rds_bind", "rds_bind", False),
    "4": ("flowlabel_exclusive_global", "flowlabel_register_exclusive",
          "flowlabel_connect", False),
    "5": ("sockstat_used_global", "tcp_socket", "read_sockstat", False),
    "6": ("socket_cookie_global", "socket_cookie", "socket_cookie", False),
    "7": ("sctp_assoc_id_global", "sctp_assoc", "sctp_assoc", False),
    "8": ("proto_mem_global", "udp_send", "read_sockstat", False),
    "9": ("proto_mem_global", "udp_send", "read_protocols", False),
    "A": ("prio_user_crosses_pidns", "prio_set_user", "prio_get", False),
    "B": ("uevent_broadcast_all_ns", "netdev_add", "uevent_listen", False),
    "C": ("ipvs_proc_no_ns_check", "ipvs_add", "read_ip_vs", False),
    "D": ("conntrack_max_global", "conntrack_max_write",
          "conntrack_max_read", False),
    "E": ("iouring_wrong_mnt_ns", "tmp_write", "iouring_tmp_list", True),
}


def make_detector(flag=None, sender_on_host=False):
    bugs = fixed_kernel() if flag is None else BugFlags(**{flag: True})
    sender = ContainerConfig("sender")
    if sender_on_host:
        sender = sender.host_mount_ns()
    machine = Machine(MachineConfig(bugs=bugs, sender=sender))
    return Detector(machine, default_specification())


class TestDetectionMatrix:
    @pytest.mark.parametrize("label", sorted(MATRIX))
    def test_bug_detected_and_labelled_on_its_kernel(self, label):
        flag, sender_name, receiver_name, on_host = MATRIX[label]
        seeds = seed_programs()
        detector = make_detector(flag, on_host)
        result = detector.check_case(
            TestCase(0, 1, seeds[sender_name], seeds[receiver_name]))
        assert result.outcome is Outcome.REPORT, label
        Diagnoser(detector).diagnose(result.report)
        assert label in classify_all(result.report), (
            label, classify_all(result.report))

    @pytest.mark.parametrize("label", sorted(MATRIX))
    def test_same_pair_passes_on_fixed_kernel(self, label):
        flag, sender_name, receiver_name, on_host = MATRIX[label]
        seeds = seed_programs()
        detector = make_detector(None, on_host)
        result = detector.check_case(
            TestCase(0, 1, seeds[sender_name], seeds[receiver_name]))
        assert result.report is None, label

    @pytest.mark.parametrize("label", sorted(MATRIX))
    def test_single_flag_does_not_leak_other_labels(self, label):
        """A one-bug kernel must only ever be labelled with bugs sharing
        its root-cause flag — cross-contamination would mean the model's
        bugs are entangled."""
        flag, sender_name, receiver_name, on_host = MATRIX[label]
        seeds = seed_programs()
        detector = make_detector(flag, on_host)
        result = detector.check_case(
            TestCase(0, 1, seeds[sender_name], seeds[receiver_name]))
        same_flag_labels = {
            other for other, (other_flag, *_rest) in MATRIX.items()
            if other_flag == flag
        }
        labels = classify_all(result.report) - {"FP", "UI"}
        assert labels <= same_flag_labels, (label, labels)


class TestHistoricalMsgStat:
    """Bug H (§2.1) needs a special topology: shared IPC namespace,
    separate PID namespaces — the msgctl IPC_STAT caller sees the PID of
    a sender it cannot see as a process."""

    def _detector(self, bugs):
        from repro.kernel.namespaces import ALL_NAMESPACE_FLAGS, CLONE_NEWIPC

        shared_ipc = ALL_NAMESPACE_FLAGS & ~CLONE_NEWIPC
        machine = Machine(MachineConfig(
            bugs=bugs,
            sender=ContainerConfig("sender", unshare_flags=shared_ipc),
            receiver=ContainerConfig("receiver", unshare_flags=shared_ipc),
        ))
        return Detector(machine, default_specification())

    def test_buggy_kernel_leaks_global_pid(self):
        seeds = seed_programs()
        detector = self._detector(BugFlags(msg_stat_global_pid=True))
        result = detector.check_case(
            TestCase(0, 1, seeds["msgq_stat"], seeds["msgq_stat_probe"]))
        assert result.outcome is Outcome.REPORT
        Diagnoser(detector).diagnose(result.report)
        assert "H" in classify_all(result.report)

    def test_fixed_kernel_translates_to_invisible(self):
        """The fixed kernel reports lspid 0 for the invisible sender; the
        remaining divergence (queue contents) is legitimate shared-IPC
        communication, never labelled as bug H."""
        seeds = seed_programs()
        detector = self._detector(fixed_kernel())
        result = detector.check_case(
            TestCase(0, 1, seeds["msgq_stat"], seeds["msgq_stat_probe"]))
        if result.report is not None:
            assert "H" not in classify_all(result.report)


class TestNonDetectableMatrix:
    def test_bug_f_nondet_filtered(self):
        seeds = seed_programs()
        detector = make_detector("conntrack_proc_leak")
        result = detector.check_case(
            TestCase(0, 1, seeds["udp_send"], seeds["read_nf_conntrack"]))
        assert result.outcome is Outcome.FILTERED_NONDET

    def test_bug_g_no_divergence(self):
        seeds = seed_programs()
        detector = make_detector("unix_diag_cross_ns")
        result = detector.check_case(
            TestCase(0, 1, seeds["unix_socket"], seeds["unix_diag_probe"]))
        assert result.outcome is Outcome.PASS
