"""Property-based tests for the extension modules (minimize, bounds,
schedules, persistence)."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import PathProfile
from repro.core.concurrent import (
    default_schedules,
    round_robin_schedule,
    sequential_schedule,
)
from repro.core.minimize import dependency_closure, prefix_through, reduce_to
from repro.core.trace_ast import TraceNode
from repro.corpus.program import Call, ConstArg, ResultArg, TestProgram

# -- program strategies -----------------------------------------------------

_names = st.text(alphabet=string.ascii_lowercase + "_", min_size=1, max_size=8)


@st.composite
def programs_with_refs(draw):
    length = draw(st.integers(min_value=1, max_value=10))
    calls = []
    for index in range(length):
        arity = draw(st.integers(0, 3))
        args = []
        for __ in range(arity):
            if index > 0 and draw(st.booleans()):
                args.append(ResultArg(draw(st.integers(0, index - 1))))
            else:
                args.append(ConstArg(draw(st.integers(0, 100))))
        calls.append(Call(draw(_names), tuple(args)))
    return TestProgram(calls)


class TestClosureProperties:
    @given(programs_with_refs(), st.data())
    def test_closure_contains_keep(self, program, data):
        keep = data.draw(st.sets(st.integers(0, len(program) - 1), min_size=1))
        assert set(keep) <= dependency_closure(program, keep)

    @given(programs_with_refs(), st.data())
    def test_closure_is_closed_under_references(self, program, data):
        keep = data.draw(st.sets(st.integers(0, len(program) - 1), min_size=1))
        closure = dependency_closure(program, keep)
        for index in closure:
            call = program.calls[index]
            if call is not None:
                assert set(call.references()) <= closure

    @given(programs_with_refs(), st.data())
    def test_closure_is_monotone(self, program, data):
        small = data.draw(st.sets(st.integers(0, len(program) - 1), min_size=1))
        extra = data.draw(st.sets(st.integers(0, len(program) - 1)))
        assert dependency_closure(program, small) <= \
            dependency_closure(program, small | extra)

    @given(programs_with_refs(), st.data())
    def test_reduce_to_keeps_exactly_the_closure(self, program, data):
        keep = data.draw(st.sets(st.integers(0, len(program) - 1), min_size=1))
        reduced = reduce_to(program, keep)
        assert set(reduced.live_call_indices()) == \
            dependency_closure(program, keep)

    @given(programs_with_refs(), st.integers(0, 9))
    def test_prefix_through_is_a_prefix(self, program, last):
        last = min(last, len(program) - 1)
        reduced = prefix_through(program, last)
        assert all(index <= last for index in reduced.live_call_indices())
        for index in range(last + 1):
            assert reduced.calls[index] == program.calls[index]


class TestBoundsProperties:
    _leaf_values = st.one_of(
        st.integers(-10**6, 10**6).map(str),
        st.floats(allow_nan=False, allow_infinity=False,
                  min_value=-1e6, max_value=1e6).map(str),
        st.text(alphabet=string.ascii_letters, min_size=1, max_size=10),
    )

    @given(st.lists(_leaf_values, min_size=1, max_size=10),
           st.floats(min_value=0.0, max_value=1.0))
    def test_observed_values_never_violate(self, values, margin):
        """The defining soundness property: anything the profile has seen
        is inside the envelope, at any non-negative margin."""
        profile = PathProfile()
        for value in values:
            profile.observe(TraceNode("x", value))
        for value in values:
            assert not profile.violates(TraceNode("x", value), margin)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=8))
    def test_observed_child_counts_never_violate(self, counts):
        profile = PathProfile()
        nodes = []
        for count in counts:
            node = TraceNode("x", "x")
            node.children = [TraceNode("c", "c") for __ in range(count)]
            nodes.append(node)
            profile.observe(node)
        for node in nodes:
            assert not profile.violates(node, margin=0.0)

    @given(st.lists(st.integers(-100, 100).map(str), min_size=2,
                    max_size=10))
    def test_wider_margin_never_adds_violations(self, values):
        profile = PathProfile()
        for value in values[:-1]:
            profile.observe(TraceNode("x", value))
        probe = TraceNode("x", values[-1])
        if not profile.violates(probe, margin=0.1):
            assert not profile.violates(probe, margin=0.5)


class TestScheduleProperties:
    @given(st.integers(0, 8), st.integers(0, 8))
    def test_sequential_counts(self, senders, receivers):
        schedule = sequential_schedule(senders, receivers)
        assert schedule.count("S") == senders
        assert schedule.count("R") == receivers

    @given(st.integers(0, 8), st.integers(0, 8), st.integers(0, 8))
    def test_round_robin_counts(self, senders, receivers, lead):
        schedule = round_robin_schedule(senders, receivers, lead)
        assert schedule.count("S") == senders
        assert schedule.count("R") == receivers

    @given(st.integers(1, 6), st.integers(1, 6))
    def test_default_set_valid_and_unique(self, senders, receivers):
        schedules = default_schedules(senders, receivers)
        assert len(set(schedules)) == len(schedules)
        assert schedules[0] == sequential_schedule(senders, receivers)
        for schedule in schedules:
            assert schedule.count("S") == senders
            assert schedule.count("R") == receivers
            assert set(schedule) <= {"S", "R"}
