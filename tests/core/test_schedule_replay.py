"""Deterministic schedule replay (satellite 1).

The contract under test is the tentpole of the scheduling subsystem: a
``ScheduleId`` is a complete, portable name for one interleaving.  The
same id against the same kernel reproduces the receiver's trace
byte-for-byte — across fresh machines, campaign re-runs, process-mode
shard pools, fault injection, and journal round-trips — and the
sequential schedule (``seq`` / the empty preemption set) reproduces the
classic two-phase execution exactly.  A light slice runs in tier-1; the
heavier sweeps are behind ``-m schedules``.
"""

from __future__ import annotations

import itertools

import pytest

from repro import cli
from repro.core.race_scenarios import (
    race_campaign_config,
    race_machine_config,
    race_scenarios,
    reproduce_races,
)
from repro.core.reportcodec import encode_record
from repro.core.schedule import (
    ALL_STRATEGIES,
    GRANULARITY_KFUNC,
    GRANULARITY_SYSCALL,
    SEQUENTIAL,
    STRATEGY_PCT,
    STRATEGY_RANDOM,
    STRATEGY_SYSTEMATIC,
    ScheduleId,
    SchedulePolicy,
    measure_horizon,
    replay_schedule,
    run_interleaved,
    schedule_points,
)
from repro.core.pipeline import Kit
from repro.faults.plan import FaultPlan
from repro.vm import fork_available
from repro.vm.machine import Machine, RECEIVER, SENDER

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="process shards require fork")


def _encoded(records):
    return [encode_record(record) for record in records]


def _signature(result):
    """Everything a re-run must reproduce byte-for-byte."""
    return (sorted(result.bugs_found()),
            sorted(report.render() for report in result.reports),
            {report.culprit_schedule for report in result.reports},
            result.groups.agg_rs_count,
            dict(result.stats.outcomes))


# -- ScheduleId: the name is the schedule -------------------------------------


class TestScheduleId:
    def test_encode_parse_round_trip(self):
        for strategy, granularity in itertools.product(
                ALL_STRATEGIES, (GRANULARITY_KFUNC, GRANULARITY_SYSCALL)):
            schedule = ScheduleId(strategy=strategy, granularity=granularity,
                                  seed=7, depth=2, index=13)
            assert ScheduleId.parse(schedule.encode()) == schedule

    def test_sequential_is_the_special_case(self):
        assert ScheduleId(strategy=SEQUENTIAL).encode() == "seq"
        assert ScheduleId.parse("seq").strategy == SEQUENTIAL

    @pytest.mark.parametrize("bad", [
        "", "pct", "pct:k:11:3", "pct:k:11:3:7:9", "bogus:k:1:1:0",
        "pct:x:1:1:0", "pct:k:one:3:7",
    ])
    def test_malformed_ids_rejected(self, bad):
        with pytest.raises(ValueError):
            ScheduleId.parse(bad)

    def test_points_are_a_pure_function_of_id_and_horizon(self):
        for strategy in (STRATEGY_PCT, STRATEGY_RANDOM):
            for index in range(6):
                schedule = ScheduleId(strategy=strategy, index=index)
                first = schedule_points(schedule, 20)
                assert first == schedule_points(schedule, 20)
                assert first <= frozenset(range(1, 21))
        assert schedule_points(ScheduleId(strategy=SEQUENTIAL), 20) \
            == frozenset()

    def test_pct_places_exactly_depth_points(self):
        for depth in (1, 2, 3):
            schedule = ScheduleId(depth=depth, index=4)
            assert len(schedule_points(schedule, 20)) == depth
        # Depth clamps to the horizon when the program is tiny.
        assert len(schedule_points(ScheduleId(depth=3), 2)) == 2

    def test_systematic_enumerates_without_repeats_then_exhausts(self):
        seen = set()
        index = 0
        while True:
            schedule = ScheduleId(strategy=STRATEGY_SYSTEMATIC, depth=2,
                                  index=index)
            points = schedule_points(schedule, 4)
            if points is None:
                break
            assert points not in seen
            seen.add(points)
            index += 1
        # C(4,1) + C(4,2) distinct point sets.
        assert len(seen) == 4 + 6

    def test_policy_dedupes_and_respects_budget(self):
        policy = SchedulePolicy(budget=24)
        ids = policy.schedule_ids(20)
        assert 0 < len(ids) <= 24
        point_sets = [points for _, points in ids]
        assert len(point_sets) == len(set(point_sets))
        assert frozenset() not in point_sets


# -- the sequential schedule IS the two-phase harness -------------------------


class TestSequentialParity:
    def test_empty_point_set_equals_two_phase_order(self):
        scenario = race_scenarios()["T1"]
        machine = Machine(race_machine_config())
        machine.reset()
        sender_seq = machine.run(SENDER, scenario.sender)
        receiver_seq = machine.run(RECEIVER, scenario.receiver)
        sender_int, receiver_int = run_interleaved(
            machine, scenario.sender, scenario.receiver, frozenset())
        assert _encoded(sender_int.records) == _encoded(sender_seq.records)
        assert _encoded(receiver_int.records) == _encoded(receiver_seq.records)

    def test_seq_id_replays_the_two_phase_receiver(self):
        for scenario in race_scenarios().values():
            machine = Machine(race_machine_config())
            machine.reset()
            machine.run(SENDER, scenario.sender)
            receiver_seq = machine.run(RECEIVER, scenario.receiver)
            replayed = replay_schedule(machine, scenario.sender,
                                       scenario.receiver, "seq")
            assert _encoded(replayed.records) == _encoded(receiver_seq.records)


# -- culprit replay: byte-for-byte, everywhere --------------------------------


@pytest.fixture(scope="module")
def interleaved_result():
    return reproduce_races()


class TestCulpritReplay:
    def test_campaign_finds_races_only_under_interleaving(
            self, interleaved_result):
        assert sorted(interleaved_result.bugs_found()) == ["T1", "T2", "T3"]
        assert all(report.culprit_schedule is not None
                   for report in interleaved_result.reports)
        assert interleaved_result.stats.interleaved_reports == 3
        assert interleaved_result.stats.schedules_executed > 0

    def test_every_culprit_replays_byte_identically(self, interleaved_result):
        machine = Machine(race_machine_config())
        for report in interleaved_result.reports:
            first = replay_schedule(machine, report.case.sender,
                                    report.case.receiver,
                                    report.culprit_schedule)
            second = replay_schedule(machine, report.case.sender,
                                     report.case.receiver,
                                     report.culprit_schedule)
            assert _encoded(first.records) == _encoded(second.records)
            assert _encoded(first.records) \
                == _encoded(report.receiver_with_records)

    def test_every_witness_not_just_the_culprit_is_named(
            self, interleaved_result):
        machine = Machine(race_machine_config())
        for report in interleaved_result.reports:
            assert report.culprit_schedule in report.witnesses
            for encoded in report.witnesses:
                # Each witness id parses and re-derives a real schedule.
                schedule = ScheduleId.parse(encoded)
                horizon = measure_horizon(machine, report.case.sender,
                                          schedule.granularity)
                assert schedule_points(schedule, horizon)

    def test_campaign_rerun_is_deterministic(self, interleaved_result):
        assert _signature(reproduce_races()) \
            == _signature(interleaved_result)

    @needs_fork
    def test_process_shards_reach_the_same_culprits(self, interleaved_result):
        sharded = Kit(race_campaign_config(
            workers=2, shard_mode="process")).run()
        assert _signature(sharded) == _signature(interleaved_result)

    def test_journal_round_trip_and_cli_repro(self, tmp_path,
                                              interleaved_result):
        """The culprit survives the store and ``kit-repro repro`` verifies
        it replays byte-identically from the journal alone."""
        store_dir = str(tmp_path)
        stored = Kit(race_campaign_config(store_dir=store_dir)).run()
        assert _signature(stored) == _signature(interleaved_result)
        assert cli.main(["repro", store_dir, stored.stats.campaign_id]) == 0
        resumed = Kit(race_campaign_config(store_dir=store_dir,
                                           resume=True)).run()
        assert _signature(resumed) == _signature(interleaved_result)
        assert resumed.stats.resumed_cases == resumed.stats.cases_total


# -- chaos: schedule exploration under fault injection ------------------------


class TestScheduleChaos:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_chaos_campaign_reaches_identical_culprits(
            self, seed, interleaved_result):
        plan = FaultPlan(seed=seed, rate=0.15)
        result = Kit(race_campaign_config(faults=plan, workers=2)).run()
        assert _signature(result) == _signature(interleaved_result)
        assert result.stats.faults_accounted(), plan.stats.snapshot()

    @needs_fork
    @pytest.mark.schedules
    @pytest.mark.parametrize("seed", [0, 1])
    def test_chaos_process_sweep(self, seed, interleaved_result):
        plan = FaultPlan(seed=seed, rate=0.15)
        result = Kit(race_campaign_config(faults=plan, workers=2,
                                          shard_mode="process")).run()
        assert _signature(result) == _signature(interleaved_result)
        assert result.stats.faults_accounted(), plan.stats.snapshot()


# -- the full strategy sweep (deselected by default) --------------------------


@pytest.mark.schedules
@pytest.mark.parametrize("strategy", sorted(ALL_STRATEGIES))
def test_strategy_sweep_replays(strategy):
    """Every strategy's witnesses replay byte-for-byte."""
    result = Kit(race_campaign_config(
        schedule_strategy=strategy, schedule_budget=64)).run()
    machine = Machine(race_machine_config())
    for report in result.reports:
        replayed = replay_schedule(machine, report.case.sender,
                                   report.case.receiver,
                                   report.culprit_schedule)
        assert _encoded(replayed.records) \
            == _encoded(report.receiver_with_records)
