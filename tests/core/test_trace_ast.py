"""Unit tests for trace ASTs and Algorithm 1."""

import pytest

from repro.core.trace_ast import (
    TraceNode,
    apply_nondet_marks,
    build_trace_ast,
    nondet_paths_from_runs,
    syscall_trace_cmp,
)
from repro.vm.executor import SyscallRecord


def record(index, name, retval=0, errno=0, details=None):
    return SyscallRecord(index, name, (), retval, errno, details or {})


class TestBuild:
    def test_root_has_one_child_per_call_slot(self):
        tree = build_trace_ast([record(0, "a"), None, record(2, "b")])
        assert len(tree.children) == 3
        assert tree.children[1].value == "removed"

    def test_call_node_children_order(self):
        tree = build_trace_ast([record(0, "read", 5, 0, {"data": "x"})])
        labels = [c.label for c in tree.children[0].children]
        assert labels == ["ret", "errno", "data"]

    def test_errno_decoded_symbolically(self):
        tree = build_trace_ast([record(0, "open", -1, 2)])
        errno_node = tree.children[0].children[1]
        assert errno_node.value == "ENOENT"

    def test_multiline_data_split_per_line(self):
        tree = build_trace_ast([record(0, "read", 10, 0,
                                       {"data": "line-a\nline-b"})])
        data_node = tree.children[0].children[2]
        assert [c.value for c in data_node.children] == ["line-a", "line-b"]

    def test_struct_details_split_per_field(self):
        tree = build_trace_ast([record(0, "fstat", 0, 0,
                                       {"stat": {"st_size": 5, "st_mtime": 9}})])
        stat_node = tree.children[0].children[2]
        assert [c.label for c in stat_node.children] == ["st_mtime", "st_size"]

    def test_list_details_split_per_entry(self):
        tree = build_trace_ast([record(0, "getdents64", 2, 0,
                                       {"entries": ["a", "b"]})])
        entries = tree.children[0].children[2]
        assert [c.value for c in entries.children] == ["a", "b"]

    def test_nested_dict_recursion(self):
        tree = build_trace_ast([record(0, "x", 0, 0,
                                       {"outer": {"inner": {"leaf": 1}}})])
        outer = tree.children[0].children[2]
        assert outer.children[0].children[0].value == "1"

    def test_walk_and_at_agree(self):
        tree = build_trace_ast([record(0, "read", 5, 0, {"data": "a\nb"})])
        for path, node in tree.walk():
            assert tree.at(path) is node

    def test_at_out_of_range_returns_none(self):
        tree = build_trace_ast([record(0, "a")])
        assert tree.at((5, 5)) is None


class TestAlgorithm1:
    def test_identical_trees_have_no_diffs(self):
        records = [record(0, "read", 5, 0, {"data": "x"})]
        assert syscall_trace_cmp(build_trace_ast(records),
                                 build_trace_ast(records)) == []

    def test_value_mismatch_reported_once(self):
        a = build_trace_ast([record(0, "read", 5)])
        b = build_trace_ast([record(0, "read", 6)])
        (diff,) = syscall_trace_cmp(a, b)
        assert diff.label == "ret"
        assert (diff.value_a, diff.value_b) == ("5", "6")

    def test_diff_carries_call_index(self):
        a = build_trace_ast([record(0, "a"), record(1, "read", 1)])
        b = build_trace_ast([record(0, "a"), record(1, "read", 2)])
        (diff,) = syscall_trace_cmp(a, b)
        assert diff.call_index == 1

    def test_child_count_mismatch_stops_descent(self):
        a = build_trace_ast([record(0, "read", 2, 0, {"data": "x\ny"})])
        b = build_trace_ast([record(0, "read", 2, 0, {"data": "x\ny\nz"})])
        diffs = syscall_trace_cmp(a, b)
        (data_diff,) = [d for d in diffs if d.label == "data"]
        assert data_diff.path == (0, 2)

    def test_nondet_flag_halts_subtree(self):
        a = build_trace_ast([record(0, "read", 5, 0, {"data": "x"})])
        b = build_trace_ast([record(0, "read", 5, 0, {"data": "y"})])
        a.children[0].children[2].det = False
        assert syscall_trace_cmp(a, b) == []

    def test_nondet_leaf_keeps_siblings_comparable(self):
        """The paper's fstat example: timestamps nondet, size still checked."""
        a = build_trace_ast([record(0, "fstat", 0, 0,
                                    {"stat": {"st_size": 5, "st_mtime": 1}})])
        b = build_trace_ast([record(0, "fstat", 0, 0,
                                    {"stat": {"st_size": 9, "st_mtime": 2}})])
        marks = frozenset({(0, 2, 0)})  # st_mtime leaf
        apply_nondet_marks(a, marks)
        apply_nondet_marks(b, marks)
        (diff,) = syscall_trace_cmp(a, b)
        assert diff.label == "st_size"

    def test_multiple_diffs_all_reported(self):
        a = build_trace_ast([record(0, "read", 1), record(1, "read", 1)])
        b = build_trace_ast([record(0, "read", 2), record(1, "read", 2)])
        assert len(syscall_trace_cmp(a, b)) == 2

    def test_comparison_is_symmetric_in_count(self):
        a = build_trace_ast([record(0, "read", 1)])
        b = build_trace_ast([record(0, "read", 2)])
        assert len(syscall_trace_cmp(a, b)) == len(syscall_trace_cmp(b, a))


class TestNondetMarks:
    def test_varying_leaf_marked(self):
        # Single-line data decodes to a leaf node; the leaf itself varies.
        runs = [build_trace_ast([record(0, "read", 5, 0, {"data": str(i)})])
                for i in range(3)]
        marks = nondet_paths_from_runs(runs)
        assert (0, 2) in marks  # the data leaf

    def test_varying_multiline_leaf_marked(self):
        runs = [build_trace_ast([record(0, "read", 5, 0,
                                        {"data": f"{i}\nsame"})])
                for i in range(3)]
        marks = nondet_paths_from_runs(runs)
        assert (0, 2, 0) in marks      # varying line
        assert (0, 2, 1) not in marks  # stable line

    def test_stable_nodes_unmarked(self):
        runs = [build_trace_ast([record(0, "read", 5, 0, {"data": "same"})])
                for __ in range(3)]
        assert nondet_paths_from_runs(runs) == frozenset()

    def test_varying_child_count_marks_parent_and_stops(self):
        runs = [
            build_trace_ast([record(0, "read", 0, 0, {"data": "a"})]),
            build_trace_ast([record(0, "read", 0, 0, {"data": "a\nb"})]),
        ]
        marks = nondet_paths_from_runs(runs)
        assert (0, 2) in marks
        assert not any(len(p) > 2 and p[:2] == (0, 2) for p in marks)

    def test_single_run_yields_no_marks(self):
        run = build_trace_ast([record(0, "read", 1)])
        assert nondet_paths_from_runs([run]) == frozenset()

    def test_varying_value_with_stable_children_descends(self):
        """A varying struct field must not hide its stable siblings."""
        runs = [
            build_trace_ast([record(0, "fstat", 0, 0,
                                    {"stat": {"st_mtime": i, "st_size": 7}})])
            for i in range(3)
        ]
        marks = nondet_paths_from_runs(runs)
        assert (0, 2, 0) in marks      # st_mtime varies
        assert (0, 2, 1) not in marks  # st_size stable

    def test_apply_marks_sets_det_false(self):
        tree = build_trace_ast([record(0, "read", 1)])
        apply_nondet_marks(tree, frozenset({(0, 0)}))
        assert tree.children[0].children[0].det is False

    def test_apply_marks_ignores_missing_paths(self):
        tree = build_trace_ast([record(0, "read", 1)])
        apply_nondet_marks(tree, frozenset({(9, 9, 9)}))  # no crash
