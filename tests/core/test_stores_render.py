"""Tests for the profile cache, markdown rendering, and surface docs."""

import os

import pytest

from repro.core.pipeline import CampaignConfig, Kit
from repro.core.profile_store import (
    CachingProfiler,
    ProfileStore,
    machine_fingerprint,
)
from repro.core.render_md import campaign_markdown, save_campaign_markdown
from repro.corpus.seeds import seed_list, seed_programs
from repro.kernel import KernelConfig, fixed_kernel, linux_5_13
from repro.kernel.syscalls import DECLS
from repro.kernel.syscalls.describe import describe_syscall, surface_markdown
from repro.vm import ContainerConfig, Machine, MachineConfig


class TestMachineFingerprint:
    def test_stable(self):
        assert machine_fingerprint(MachineConfig()) == \
            machine_fingerprint(MachineConfig())

    def test_bugs_change_it(self):
        assert machine_fingerprint(MachineConfig(bugs=linux_5_13())) != \
            machine_fingerprint(MachineConfig(bugs=fixed_kernel()))

    def test_jump_label_changes_it(self):
        assert machine_fingerprint(
            MachineConfig(kernel=KernelConfig(jump_label=True))) != \
            machine_fingerprint(MachineConfig())

    def test_container_flags_change_it(self):
        host = MachineConfig(sender=ContainerConfig("sender").host_mount_ns())
        assert machine_fingerprint(host) != machine_fingerprint(MachineConfig())


class TestProfileStore:
    def test_cache_roundtrip(self, tmp_path):
        machine = Machine(MachineConfig(bugs=linux_5_13()))
        profiler = CachingProfiler(machine, str(tmp_path))
        program = seed_programs()["tcp_socket"]
        first = profiler.profile(program)
        assert profiler.store.misses == 1
        second = profiler.profile(program)
        assert profiler.store.hits == 1
        assert second.sender.total_accesses() == first.sender.total_accesses()

    def test_cached_profile_skips_runs(self, tmp_path):
        machine = Machine(MachineConfig(bugs=linux_5_13()))
        CachingProfiler(machine, str(tmp_path)).profile_corpus(seed_list()[:5])
        fresh = CachingProfiler(Machine(MachineConfig(bugs=linux_5_13())),
                                str(tmp_path))
        fresh.profile_corpus(seed_list()[:5])
        assert fresh.runs_executed == 0

    def test_index_is_restamped(self, tmp_path):
        machine = Machine(MachineConfig(bugs=linux_5_13()))
        profiler = CachingProfiler(machine, str(tmp_path))
        program = seed_programs()["tcp_socket"]
        profiler.profile(program, index=0)
        cached = profiler.profile(program, index=7)
        assert cached.index == 7

    def test_corrupted_entry_reprofiled(self, tmp_path):
        machine = Machine(MachineConfig(bugs=linux_5_13()))
        profiler = CachingProfiler(machine, str(tmp_path))
        program = seed_programs()["tcp_socket"]
        profiler.profile(program)
        victim = profiler.store._path(program)
        with open(victim, "wb") as handle:
            handle.write(b"garbage")
        fresh = CachingProfiler(Machine(MachineConfig(bugs=linux_5_13())),
                                str(tmp_path))
        profile = fresh.profile(program)
        assert profile.sender.total_accesses() > 0

    def test_pipeline_integration(self, tmp_path):
        base = dict(machine=MachineConfig(bugs=linux_5_13()),
                    corpus=seed_list()[:10], profile_dir=str(tmp_path))
        first = Kit(CampaignConfig(**base)).run()
        second = Kit(CampaignConfig(**base)).run()
        assert first.stats.profile_runs > 0
        assert second.stats.profile_runs == 0
        assert first.bugs_found() == second.bugs_found()


class TestCampaignMarkdown:
    @pytest.fixture(scope="class")
    def campaign(self):
        config = CampaignConfig(machine=MachineConfig(bugs=linux_5_13()),
                                corpus=seed_list())
        return Kit(config).run()

    def test_contains_summary_and_groups(self, campaign):
        text = campaign_markdown(campaign)
        assert "## Summary" in text
        assert "## Groups" in text
        assert "AGG-RS" in text

    def test_every_group_has_a_section(self, campaign):
        text = campaign_markdown(campaign)
        assert text.count("### Group ") == campaign.groups.agg_rs_count

    def test_reports_include_programs(self, campaign):
        text = campaign_markdown(campaign)
        assert "# sender" in text and "# receiver" in text

    def test_save_writes_file(self, campaign, tmp_path):
        path = str(tmp_path / "report.md")
        save_campaign_markdown(campaign, path, title="Nightly")
        with open(path) as handle:
            assert handle.read().startswith("# Nightly")


class TestSurfaceDocs:
    def test_every_declared_syscall_documented(self):
        text = surface_markdown()
        for name in DECLS.names():
            assert f"| `{name}` |" in text

    def test_signature_format(self):
        decl = DECLS.get("bind")
        signature = describe_syscall(decl)
        assert signature.startswith("bind(fd: fd<sock>")

    def test_producers_show_return_kind(self):
        assert describe_syscall(DECLS.get("socket")).endswith("-> sock")

    def test_resource_kinds_cross_referenced(self):
        text = surface_markdown()
        assert "- `sock`: produced by" in text

    def test_checked_in_copy_is_current(self):
        """docs/SYSCALLS.md must match the registry (regenerate via
        `kit-repro syscalls --output docs/SYSCALLS.md`)."""
        here = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        path = os.path.join(here, "docs", "SYSCALLS.md")
        with open(path) as handle:
            assert handle.read() == surface_markdown()
