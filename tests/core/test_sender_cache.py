"""SenderStateCache unit behaviour: LRU budget, owners, chaos sites."""

from __future__ import annotations

import pytest

from repro.core.execution import SenderState, SenderStateCache
from repro.faults.invariants import CacheOwnerLeakError, verify_owner_invariant
from repro.faults.plan import (
    SITE_SENDER_CACHE_EVICT,
    SITE_SENDER_CACHE_STALE_OWNER,
    STALE_OWNER,
    FaultPlan,
)
from repro.vm.executor import ExecutionResult
from repro.vm.segments import StateDelta

SNAP = "snap0"


def entry(size):
    return SenderState(StateDelta((), b"x" * size, 0), ExecutionResult([]))


class TestByteBudget:
    def test_lru_evicts_oldest_unused_entry(self):
        cache = SenderStateCache(max_bytes=30)
        cache.put(SNAP, "a", entry(10))
        cache.put(SNAP, "b", entry(10))
        cache.put(SNAP, "c", entry(10))
        assert cache.get(SNAP, "a") is not None  # refresh: b is now oldest
        cache.put(SNAP, "d", entry(10))
        assert cache.evictions == 1
        assert cache.get(SNAP, "b") is None
        assert cache.get(SNAP, "a") is not None
        assert cache.get(SNAP, "c") is not None
        assert cache.get(SNAP, "d") is not None
        assert cache.bytes_held == 30

    def test_eviction_loop_frees_enough_bytes(self):
        cache = SenderStateCache(max_bytes=30)
        for name in "abc":
            cache.put(SNAP, name, entry(10))
        cache.put(SNAP, "big", entry(25))
        # Only the 25-byte newcomer fits under the 30-byte cap, so all
        # three 10-byte residents are evicted oldest-first.
        assert cache.evictions == 3
        assert len(cache) == 1
        assert cache.bytes_held == 25
        assert cache.get(SNAP, "big") is not None

    def test_oversize_entry_is_never_admitted(self):
        cache = SenderStateCache(max_bytes=10)
        cache.put(SNAP, "huge", entry(11))
        assert len(cache) == 0
        assert cache.bytes_held == 0
        assert cache.evictions == 0

    def test_last_resident_entry_is_not_evicted_by_itself(self):
        """The budget never thrashes the only entry: an admitted entry
        at/below max_bytes stays resident even if a later admission
        leaves the pair momentarily over budget."""
        cache = SenderStateCache(max_bytes=10)
        cache.put(SNAP, "a", entry(9))
        cache.put(SNAP, "b", entry(9))
        assert len(cache) == 1
        assert cache.get(SNAP, "b") is not None

    def test_snapshot_id_is_part_of_the_key(self):
        cache = SenderStateCache()
        first = entry(4)
        cache.put("snapA", "s", first)
        cache.put("snapB", "s", entry(4))
        assert cache.get("snapA", "s") is first
        assert cache.get("snapB", "s") is not first
        assert len(cache) == 2


class TestOwnership:
    def test_first_put_wins_and_keeps_its_owner(self):
        cache = SenderStateCache()
        first = entry(4)
        cache.put(SNAP, "s", first, owner=0)
        cache.put(SNAP, "s", entry(4), owner=1)  # lost the race: ignored
        assert cache.invalidate_owner(1) == 0
        assert cache.get(SNAP, "s") is first

    def test_invalidate_owner_drops_only_owned_deltas(self):
        cache = SenderStateCache()
        cache.put(SNAP, "a", entry(10), owner=0)
        cache.put(SNAP, "b", entry(10), owner=1)
        cache.put(SNAP, "c", entry(10))  # in-process, unowned
        assert cache.invalidate_owner(0) == 1
        assert cache.get(SNAP, "a") is None
        assert cache.get(SNAP, "b") is not None
        assert cache.get(SNAP, "c") is not None
        assert cache.bytes_held == 20

    def test_bytes_by_owner_breakdown(self):
        cache = SenderStateCache()
        cache.put(SNAP, "a", entry(10), owner=0)
        cache.put(SNAP, "b", entry(20), owner=0)
        cache.put(SNAP, "c", entry(5), owner=1)
        cache.put(SNAP, "d", entry(3))
        assert cache.bytes_by_owner() == {0: 30, 1: 5, None: 3}

    def test_owner_leak_trips_the_shared_invariant(self):
        cache = SenderStateCache()
        cache.put(SNAP, "a", entry(4), owner=7)
        with pytest.raises(CacheOwnerLeakError) as leak:
            verify_owner_invariant([7], sender_states=cache)
        assert "sender_states" in str(leak.value)
        cache.invalidate_owner(7)
        verify_owner_invariant([7], sender_states=cache)  # clean now


class TestChaosSites:
    def test_evict_injection_is_absorbed_as_a_miss(self):
        plan = FaultPlan(seed=0, schedule={SITE_SENDER_CACHE_EVICT: [0]})
        cache = SenderStateCache(faults=plan)
        cache.put(SNAP, "s", entry(4))
        assert cache.get(SNAP, "s") is None  # injected eviction
        assert cache.get(SNAP, "s") is None  # genuinely gone
        assert cache.misses == 2
        assert plan.stats.accounted()
        assert plan.stats.injected[SITE_SENDER_CACHE_EVICT] == 1

    def test_stale_owner_injection_survives_invalidation(self):
        plan = FaultPlan(seed=0,
                         schedule={SITE_SENDER_CACHE_STALE_OWNER: [0]})
        cache = SenderStateCache(faults=plan)
        cache.put(SNAP, "s", entry(4), owner=3)
        # The mis-tagged entry is unreachable by owner invalidation...
        assert cache.invalidate_owner(3) == 0
        assert STALE_OWNER in cache.owner_tags()
        with pytest.raises(CacheOwnerLeakError):
            verify_owner_invariant([], sender_states=cache)
        # ...and the sweep both reclaims it and settles the accounting.
        assert not plan.stats.accounted()
        assert cache.purge_stale() == 1
        assert len(cache) == 0
        assert cache.bytes_held == 0
        assert plan.stats.accounted()
        verify_owner_invariant([], sender_states=cache)

    def test_stale_owner_injection_on_lost_race_is_a_noop(self):
        # The injection fires on the *second* put, which loses the
        # first-put race anyway: no stale tag is stored, and the fault
        # is recovered on the spot.
        plan = FaultPlan(seed=0,
                         schedule={SITE_SENDER_CACHE_STALE_OWNER: [1]})
        cache = SenderStateCache(faults=plan)
        first = entry(4)
        cache.put(SNAP, "s", first, owner=0)
        cache.put(SNAP, "s", entry(4), owner=1)
        assert cache.get(SNAP, "s") is first
        assert cache.owner_tags() == [0]
        assert plan.stats.accounted()
        assert plan.stats.injected[SITE_SENDER_CACHE_STALE_OWNER] == 1
