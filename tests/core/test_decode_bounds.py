"""Unit tests for the strace-style decoder and the §7 bounds detector."""

import pytest

from repro.core.bounds import BoundsDetector, PathProfile
from repro.core.decode import decode_record, decode_trace, side_by_side
from repro.core.detection import Detector, Outcome
from repro.core.generation import TestCase
from repro.core.spec import default_specification
from repro.core.trace_ast import TraceNode
from repro.corpus.program import prog
from repro.corpus.seeds import seed_programs
from repro.kernel import fixed_kernel, known_bug_kernel, linux_5_13
from repro.vm import Machine, MachineConfig
from repro.vm.executor import SyscallRecord


class TestDecode:
    def _run(self, machine, program):
        machine.reset()
        return machine.run("receiver", program).records

    def test_success_line(self, machine_513):
        records = self._run(machine_513, prog(("socket", 2, 1, 6),))
        line = decode_record(records[0])
        assert line.startswith("socket(0x2, 0x1, 0x6) = 3")
        assert "<sock_tcp>" in line

    def test_error_line_shows_errno(self, machine_513):
        records = self._run(machine_513, prog(("open", "/nope", 0),))
        assert decode_record(records[0]).endswith("= -1 ENOENT")

    def test_fd_argument_annotated_with_subject(self, machine_513):
        records = self._run(machine_513, seed_programs()["read_ptype"])
        line = decode_record(records[1])
        assert "3</proc/net/ptype>" in line

    def test_string_args_quoted(self, machine_513):
        records = self._run(machine_513, prog(("sethostname", "kit-a"),))
        assert 'sethostname("kit-a")' in decode_record(records[0])

    def test_file_content_indented(self, machine_513):
        records = self._run(machine_513, seed_programs()["read_sockstat"])
        text = decode_record(records[1])
        assert "  | sockets: used" in text

    def test_long_content_truncated(self):
        record = SyscallRecord(0, "read", (3, 4096), 4096, 0,
                               {"data": "\n".join(str(i) for i in range(40))})
        text = decode_record(record)
        assert "more lines" in text

    def test_struct_details_rendered(self, machine_513):
        records = self._run(machine_513, seed_programs()["fstat_tmp"])
        text = decode_record(records[1])
        assert "stat = {" in text and "st_size=" in text

    def test_trace_marks_removed_calls(self, machine_513):
        program = prog(("getpid",), ("getpid",)).without_call(0)
        records = self._run(machine_513, program)
        text = decode_trace(records)
        assert "# call 0 removed" in text

    def test_side_by_side_marks_interference(self, machine_513):
        records = self._run(machine_513, prog(("getpid",),))
        text = side_by_side(records, records, interfered=[0])
        assert ">> [0]" in text


class TestPathProfile:
    def test_numeric_interval_learning(self):
        profile = PathProfile()
        for value in ("3", "7", "5"):
            profile.observe(TraceNode("x", value))
        assert (profile.low, profile.high) == (3.0, 7.0)
        assert profile.varied

    def test_within_margin_is_ok(self):
        profile = PathProfile()
        for value in ("10", "20"):
            profile.observe(TraceNode("x", value))
        assert not profile.violates(TraceNode("x", "24"), margin=0.25)

    def test_outside_margin_violates(self):
        profile = PathProfile()
        for value in ("10", "20"):
            profile.observe(TraceNode("x", value))
        assert profile.violates(TraceNode("x", "100"), margin=0.25)

    def test_stable_value_not_varied(self):
        profile = PathProfile()
        profile.observe(TraceNode("x", "same"))
        profile.observe(TraceNode("x", "same"))
        assert not profile.varied

    def test_non_numeric_set_semantics(self):
        profile = PathProfile()
        profile.observe(TraceNode("x", "alpha"))
        profile.observe(TraceNode("x", "beta"))
        assert not profile.violates(TraceNode("x", "alpha"), margin=0.25)
        assert profile.violates(TraceNode("x", "gamma"), margin=0.25)

    def test_child_count_envelope(self):
        profile = PathProfile()
        for count in (0, 2):
            node = TraceNode("x", "x")
            node.children = [TraceNode("c", "c") for __ in range(count)]
            profile.observe(node)
        wild = TraceNode("x", "x")
        wild.children = [TraceNode("c", "c") for __ in range(9)]
        assert profile.violates(wild, margin=0.25)


class TestBoundsDetector:
    """The §7 extension: catches bug F, stays clean on the fixed kernel."""

    def test_catches_bug_f_where_baseline_cannot(self):
        seeds = seed_programs()
        spec = default_specification()

        baseline = Detector(Machine(MachineConfig(bugs=known_bug_kernel("F"))),
                            spec)
        result = baseline.check_case(
            TestCase(0, 1, seeds["udp_send"], seeds["read_nf_conntrack"]))
        assert result.outcome is Outcome.FILTERED_NONDET

        bounds = BoundsDetector(Machine(MachineConfig(
            bugs=known_bug_kernel("F"))), spec)
        violations = bounds.check(seeds["udp_send"],
                                  seeds["read_nf_conntrack"])
        assert violations
        assert any("sport=4000" in (v.observed or "") for v in violations)

    def test_clean_on_fixed_kernel(self):
        seeds = seed_programs()
        bounds = BoundsDetector(Machine(MachineConfig(bugs=fixed_kernel())),
                                default_specification())
        assert bounds.check(seeds["udp_send"],
                            seeds["read_nf_conntrack"]) == []

    def test_still_catches_deterministic_bugs(self):
        seeds = seed_programs()
        bounds = BoundsDetector(Machine(MachineConfig(bugs=linux_5_13())),
                                default_specification())
        violations = bounds.check(seeds["packet_socket"], seeds["read_ptype"])
        assert violations

    def test_learning_is_cached(self):
        seeds = seed_programs()
        bounds = BoundsDetector(Machine(MachineConfig(bugs=fixed_kernel())),
                                default_specification())
        bounds.learn(seeds["read_uptime"])
        runs = bounds.runs_executed
        bounds.learn(seeds["read_uptime"])
        assert bounds.runs_executed == runs

    def test_unprotected_violations_filtered(self):
        """Bounds violations obey the same specification gate."""
        seeds = seed_programs()
        bounds = BoundsDetector(Machine(MachineConfig(bugs=fixed_kernel())),
                                default_specification())
        # /proc/crypto interference is real but unprotected.
        violations = bounds.check(seeds["crypto_take_ref"],
                                  seeds["read_crypto"])
        assert violations == []
