"""Unit tests for report aggregation (§4.4) and the evaluation oracle."""

import pytest

from repro.core.aggregation import (
    aggregate,
    call_signature,
    receiver_signature,
    sender_signature,
)
from repro.core.detection import Detector, Outcome
from repro.core.diagnosis import Diagnoser
from repro.core.generation import TestCase
from repro.core.oracle import (
    FALSE_POSITIVE,
    UNDER_INVESTIGATION,
    classify,
    classify_all,
)
from repro.core.spec import default_specification
from repro.corpus.seeds import seed_programs
from repro.kernel import linux_5_13
from repro.vm import Machine, MachineConfig
from repro.vm.executor import SyscallRecord


@pytest.fixture(scope="module")
def detector():
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    return Detector(machine, default_specification())


def make_report(detector, sender_name, receiver_name, diagnose=True):
    seeds = seed_programs()
    result = detector.check_case(
        TestCase(0, 1, seeds[sender_name], seeds[receiver_name]))
    assert result.outcome is Outcome.REPORT, (sender_name, receiver_name)
    if diagnose:
        Diagnoser(detector).diagnose(result.report)
    return result.report


class TestCallSignature:
    def test_none_record(self):
        assert call_signature(None) == "<unknown>"

    def test_fd_kind_and_subject_in_signature(self):
        record = SyscallRecord(0, "pread64", (3, 10, 0), 10, 0, {},
                               {"fd": "fd_proc_net"},
                               None, {"fd": "/proc/net/ptype"})
        assert call_signature(record) == "pread64(fd_proc_net:/proc/net/ptype)"

    def test_ret_kind_in_signature(self):
        record = SyscallRecord(0, "socket", (2, 1, 6), 3, 0, {}, {},
                               "sock_tcp", {"ret": "socket(TCP)"})
        assert call_signature(record) == "socket(ret=sock_tcp:socket(TCP))"

    def test_distinct_proc_files_distinct_signatures(self, detector):
        ptype = make_report(detector, "packet_socket", "read_ptype")
        sockstat = make_report(detector, "tcp_socket", "read_sockstat")
        assert receiver_signature(ptype) != receiver_signature(sockstat)


class TestAggregation:
    def test_same_interference_lands_in_one_group(self, detector):
        first = make_report(detector, "packet_socket", "read_ptype")
        second = make_report(detector, "packet_socket_ip", "read_ptype")
        groups = aggregate([first, second])
        assert groups.agg_r_count == 1
        # Same receiver, same sender syscall signature -> one AGG-RS group.
        assert groups.agg_rs_count == 1

    def test_different_receivers_split_agg_r(self, detector):
        reports = [
            make_report(detector, "packet_socket", "read_ptype"),
            make_report(detector, "tcp_socket", "read_sockstat"),
        ]
        groups = aggregate(reports)
        assert groups.agg_r_count == 2

    def test_agg_rs_refines_agg_r(self, detector):
        reports = [
            make_report(detector, "packet_socket", "read_ptype"),
            make_report(detector, "packet_socket_ip", "read_ptype"),
            make_report(detector, "tcp_socket", "read_sockstat"),
            make_report(detector, "udp_send", "read_sockstat"),
        ]
        groups = aggregate(reports)
        assert groups.agg_rs_count >= groups.agg_r_count

    def test_group_counts_bounded_by_reports(self, detector):
        reports = [
            make_report(detector, "packet_socket", "read_ptype"),
            make_report(detector, "tcp_socket", "read_sockstat"),
        ]
        groups = aggregate(reports)
        assert groups.agg_rs_count <= len(reports)

    def test_drop_agg_r_removes_nested_groups(self, detector):
        reports = [
            make_report(detector, "packet_socket", "read_ptype"),
            make_report(detector, "tcp_socket", "read_sockstat"),
        ]
        groups = aggregate(reports)
        sig = receiver_signature(reports[0])
        dropped = groups.drop_agg_r(sig)
        assert dropped == [reports[0]]
        assert all(key[0] != sig for key in groups.agg_rs)

    def test_undiagnosed_report_gets_fallback_signature(self, detector):
        report = make_report(detector, "packet_socket", "read_ptype",
                             diagnose=False)
        assert sender_signature(report) == "<undiagnosed>"
        assert receiver_signature(report) != "<none>"


class TestOracle:
    @pytest.mark.parametrize("sender,receiver,label", [
        ("packet_socket", "read_ptype", "1"),
        ("flowlabel_register_exclusive", "flowlabel_send", "2"),
        ("rds_bind", "rds_bind", "3"),
        ("flowlabel_register_exclusive", "flowlabel_connect", "4"),
        ("tcp_socket", "read_sockstat", "5"),
        ("socket_cookie", "socket_cookie", "6"),
        ("sctp_assoc", "sctp_assoc", "7"),
        ("udp_send", "read_sockstat", "8"),
        ("udp_send", "read_protocols", "9"),
    ])
    def test_table2_bug_labels(self, detector, sender, receiver, label):
        report = make_report(detector, sender, receiver)
        assert label in classify_all(report)

    def test_multi_bug_report_gets_multiple_labels(self, detector):
        """udp_send moves both the used and the mem counters of sockstat."""
        report = make_report(detector, "udp_send", "read_sockstat")
        assert {"5", "8"} <= classify_all(report)

    def test_primary_label_is_canonical(self, detector):
        report = make_report(detector, "udp_send", "read_sockstat")
        assert classify(report) == "5"

    def test_mount_stat_fp_class(self, detector):
        report = make_report(detector, "mount_and_stat", "mount_and_stat")
        assert classify(report) == FALSE_POSITIVE

    def test_unix_ino_drift_is_under_investigation(self, detector):
        report = make_report(detector, "unix_socket", "unix_list_own")
        assert classify(report) == UNDER_INVESTIGATION
