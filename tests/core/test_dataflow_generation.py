"""Unit tests for profiling, the data-flow index, clustering, generation."""

import pytest

from repro.core.clustering import (
    DfFullStrategy,
    DfIaStrategy,
    DfStStrategy,
    strategy_by_name,
)
from repro.core.dataflow import AccessPoint, DataFlowIndex, stack_sha1
from repro.core.generation import TestCaseGenerator
from repro.core.profile import Profiler
from repro.core.spec import default_specification
from repro.corpus.program import prog
from repro.corpus.seeds import seed_programs


@pytest.fixture(scope="module")
def profiled(machine_513_module):
    """A small profiled corpus shared across this module's tests."""
    seeds = seed_programs()
    corpus = [seeds["packet_socket"], seeds["read_ptype"],
              seeds["tcp_socket"], seeds["read_sockstat"],
              seeds["read_protocols"], seeds["udp_send"],
              seeds["socket_cookie"], seeds["crypto_take_ref"],
              seeds["read_crypto"]]
    profiler = Profiler(machine_513_module)
    profiles = profiler.profile_corpus(corpus)
    return corpus, profiles, profiler


@pytest.fixture(scope="module")
def machine_513_module():
    from repro.kernel import linux_5_13
    from repro.vm import Machine, MachineConfig

    return Machine(MachineConfig(bugs=linux_5_13()))


class TestProfiler:
    def test_four_runs_per_program(self, machine_513_module):
        profiler = Profiler(machine_513_module)
        profiler.profile(seed_programs()["tcp_socket"])
        assert profiler.runs_executed == 4

    def test_profile_contains_both_containers(self, profiled):
        __, profiles, __ = profiled
        profile = profiles[0]
        assert profile.sender.records and profile.receiver.records
        assert profile.sender.total_accesses() > 0

    def test_accesses_align_with_calls(self, profiled):
        corpus, profiles, __ = profiled
        for corpus_prog, profile in zip(corpus, profiles):
            assert len(profile.sender.accesses) == len(corpus_prog)

    def test_profiles_are_deterministic(self, machine_513_module):
        profiler = Profiler(machine_513_module)
        program = seed_programs()["tcp_socket"]
        first = profiler.profile(program)
        second = profiler.profile(program)
        first_points = [(a.addr, a.ip, s)
                        for acc in first.sender.accesses if acc
                        for a, s in acc]
        second_points = [(a.addr, a.ip, s)
                         for acc in second.sender.accesses if acc
                         for a, s in acc]
        assert first_points == second_points


class TestDataFlowIndex:
    def test_ptype_flow_discovered(self, profiled):
        """packet_socket writes the global ptype list; read_ptype reads it."""
        corpus, profiles, __ = profiled
        index = DataFlowIndex.build(profiles, default_specification())
        flows = [
            (w.prog_index, r.prog_index)
            for addr in index.overlap_addresses()
            for w, r in index.flows_at(addr)
        ]
        assert (0, 1) in flows  # packet_socket -> read_ptype

    def test_per_namespace_state_never_overlaps(self, profiled):
        """Sender writes its own-ns structures; receiver reads its own:
        addresses must differ, so pure per-ns state yields no flows."""
        corpus, profiles, __ = profiled
        index = DataFlowIndex.build(profiles, default_specification())
        # The UTS hostname is per-namespace; no seed pair flows through it.
        # Check structurally: every overlap address has a genuine global
        # writer (the write points come from the sender container).
        assert index.overlap_addresses()

    def test_unprotected_reader_calls_excluded(self, profiled):
        """read_crypto's pread64 reads the global crypto table, but
        /proc/crypto descriptors are not in the spec, so no read point may
        come from that call.  (Its open() is still spec-selected — path
        resolution is a mount-namespace operation.)"""
        corpus, profiles, __ = profiled
        index = DataFlowIndex.build(profiles, default_specification())
        crypto_reader = corpus.index(seed_programs()["read_crypto"])
        pread_readers = [
            (point.prog_index, point.call_index)
            for points in index.readers.values()
            for point in points
        ]
        assert (crypto_reader, 1) not in pread_readers

    def test_total_flow_count_matches_sum(self, profiled):
        __, profiles, __ = profiled
        index = DataFlowIndex.build(profiles, default_specification())
        manual = sum(
            len(index.writers[a]) * len(index.readers[a])
            for a in index.overlap_addresses()
        )
        assert index.total_flow_count() == manual

    def test_points_are_deduplicated(self, profiled):
        __, profiles, __ = profiled
        index = DataFlowIndex.build(profiles, default_specification())
        for points in list(index.writers.values()) + list(index.readers.values()):
            keys = [(p.prog_index, p.addr, p.ip, p.stack) for p in points]
            assert len(keys) == len(set(keys))

    def test_stack_sha1_is_stable_and_distinct(self):
        assert stack_sha1((1, 2, 3)) == stack_sha1((1, 2, 3))
        assert stack_sha1((1, 2, 3)) != stack_sha1((1, 2))
        assert stack_sha1((12, 3)) != stack_sha1((1, 23))


class TestClusteringStrategies:
    def _point(self, ip=1, stack=(7, 8, 9)):
        return AccessPoint(0, 0, addr=100, width=8, ip=ip, stack=stack)

    def test_df_ia_keys_on_instruction_only(self):
        strategy = DfIaStrategy()
        assert strategy.write_key(self._point(stack=(1,))) == \
            strategy.write_key(self._point(stack=(2,)))

    def test_df_st_distinguishes_stacks(self):
        strategy = DfStStrategy(depth=1)
        assert strategy.write_key(self._point(stack=(1,))) != \
            strategy.write_key(self._point(stack=(2,)))

    def test_df_st_depth_limits_context(self):
        strategy = DfStStrategy(depth=1)
        assert strategy.write_key(self._point(stack=(1, 5))) == \
            strategy.write_key(self._point(stack=(2, 5)))

    def test_df_st_deeper_context_distinguishes(self):
        strategy = DfStStrategy(depth=2)
        assert strategy.write_key(self._point(stack=(1, 5))) != \
            strategy.write_key(self._point(stack=(2, 5)))

    def test_df_full_keys_on_everything(self):
        strategy = DfFullStrategy()
        a = AccessPoint(0, 0, 100, 8, 1, (1,))
        b = AccessPoint(1, 0, 100, 8, 1, (1,))
        assert strategy.write_key(a) != strategy.write_key(b)

    def test_strategy_by_name(self):
        assert strategy_by_name("df-ia").name == "df-ia"
        assert strategy_by_name("df-st-2").name == "df-st-2"
        assert strategy_by_name("df").name == "df"
        with pytest.raises(ValueError):
            strategy_by_name("rand")
        with pytest.raises(ValueError):
            strategy_by_name("bogus")

    def test_df_st_requires_positive_depth(self):
        with pytest.raises(ValueError):
            DfStStrategy(depth=0)


class TestGeneration:
    def test_cluster_count_ordering(self, profiled):
        """Table 4's shape: DF-IA <= DF-ST-1 <= DF-ST-2 <= DF."""
        corpus, profiles, __ = profiled
        generator = TestCaseGenerator(corpus, profiles, default_specification())
        counts = [
            generator.generate(strategy_by_name(name)).cluster_count
            for name in ("df-ia", "df-st-1", "df-st-2", "df")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == generator.index.total_flow_count()

    def test_representatives_cover_every_cluster(self, profiled):
        corpus, profiles, __ = profiled
        generator = TestCaseGenerator(corpus, profiles, default_specification())
        result = generator.generate(strategy_by_name("df-ia"))
        covered = sum(len(case.cluster_keys) for case in result.test_cases)
        assert covered == result.cluster_count

    def test_pairs_are_deduplicated(self, profiled):
        corpus, profiles, __ = profiled
        generator = TestCaseGenerator(corpus, profiles, default_specification())
        result = generator.generate(strategy_by_name("df-ia"))
        pairs = [case.pair for case in result.test_cases]
        assert len(pairs) == len(set(pairs))

    def test_max_clusters_caps_materialization(self, profiled):
        corpus, profiles, __ = profiled
        generator = TestCaseGenerator(corpus, profiles, default_specification())
        result = generator.generate(strategy_by_name("df"), max_clusters=3)
        assert sum(len(c.cluster_keys) for c in result.test_cases) == 3

    def test_random_generation_respects_budget(self, profiled):
        corpus, __, __ = profiled
        generator = TestCaseGenerator(corpus, None, default_specification())
        result = generator.generate_random(10, seed=3)
        assert len(result.test_cases) == 10
        assert result.strategy == "rand"

    def test_random_generation_is_deterministic(self, profiled):
        corpus, __, __ = profiled
        generator = TestCaseGenerator(corpus, None, default_specification())
        first = [c.pair for c in generator.generate_random(10, seed=3).test_cases]
        second = [c.pair for c in generator.generate_random(10, seed=3).test_cases]
        assert first == second

    def test_dataflow_without_profiles_raises(self, profiled):
        corpus, __, __ = profiled
        generator = TestCaseGenerator(corpus, None, default_specification())
        with pytest.raises(ValueError):
            generator.generate(strategy_by_name("df-ia"))

    def test_misaligned_profiles_rejected(self, profiled):
        corpus, profiles, __ = profiled
        with pytest.raises(ValueError):
            TestCaseGenerator(corpus, profiles[:-1], default_specification())
