"""Unit tests for the specification layer and non-determinism analysis."""

import pytest

from repro.core.nondet import NondetAnalyzer, NondetStore
from repro.core.spec import (
    DEFAULT_PROTECTED_KINDS,
    KNOWN_UNPROTECTED_KINDS,
    Specification,
    default_specification,
    select_dependent_calls,
)
from repro.corpus.program import prog
from repro.corpus.seeds import seed_programs
from repro.vm.executor import SyscallRecord


def record(name, arg_kinds=None, ret_kind=None):
    return SyscallRecord(0, name, (), 0, 0, {}, arg_kinds or {}, ret_kind)


class TestSpecification:
    def test_protected_fd_kind_selected(self):
        spec = default_specification()
        assert spec.call_accesses_protected(
            record("pread64", {"fd": "fd_proc_net"}))

    def test_produced_resource_counts(self):
        spec = default_specification()
        assert spec.call_accesses_protected(record("socket", ret_kind="sock_tcp"))

    def test_unprotected_kind_not_selected(self):
        spec = default_specification()
        assert not spec.call_accesses_protected(
            record("pread64", {"fd": "fd_proc"}))

    def test_checker_selects_priority_calls(self):
        spec = default_specification()
        assert spec.call_accesses_protected(record("getpriority"))

    def test_plain_unprotected_call_not_selected(self):
        spec = default_specification()
        assert not spec.call_accesses_protected(record("crypto_alloc"))
        assert not spec.call_accesses_protected(record("clock_gettime"))

    def test_kind_sets_are_disjoint(self):
        assert not DEFAULT_PROTECTED_KINDS & KNOWN_UNPROTECTED_KINDS

    def test_with_kinds_refines(self):
        spec = default_specification().with_kinds("fd_proc")
        assert spec.call_accesses_protected(record("read", {"fd": "fd_proc"}))

    def test_without_kinds_narrows(self):
        spec = default_specification().without_kinds("fd_proc_net")
        assert not spec.call_accesses_protected(
            record("read", {"fd": "fd_proc_net"}))

    def test_with_checker_extends(self):
        spec = default_specification().with_checker(
            lambda r: r.name == "clock_gettime")
        assert spec.call_accesses_protected(record("clock_gettime"))

    def test_any_protected_over_records(self):
        spec = default_specification()
        records = [None, record("crypto_alloc"), record("getpriority")]
        assert spec.any_protected(records)


class TestSeedCallExpansion:
    def test_direct_dependency_selected(self):
        program = prog(("open", "/proc/net/ptype", 0), ("pread64", "r0", 10, 0))
        assert select_dependent_calls(program, 0) == {0, 1}

    def test_transitive_dependency_selected(self):
        program = prog(("socket", 2, 1, 6), ("bind", "r0", 1, 2),
                       ("connect", "r0", 1, 2))
        assert select_dependent_calls(program, 0) == {0, 1, 2}

    def test_independent_calls_not_selected(self):
        program = prog(("socket", 2, 1, 6), ("getpid",))
        assert select_dependent_calls(program, 0) == {0}

    def test_holes_are_skipped(self):
        program = prog(("socket", 2, 1, 6), ("bind", "r0", 1, 2)).without_call(1)
        assert select_dependent_calls(program, 0) == {0}


class TestNondetStore:
    def test_memory_roundtrip(self):
        store = NondetStore()
        store.put("abc", frozenset({(0, 1), (2,)}))
        assert store.get("abc") == frozenset({(0, 1), (2,)})

    def test_missing_returns_none(self):
        assert NondetStore().get("missing") is None

    def test_disk_roundtrip(self, tmp_path):
        store = NondetStore(str(tmp_path))
        store.put("abc", frozenset({(0, 1)}))
        fresh = NondetStore(str(tmp_path))
        assert fresh.get("abc") == frozenset({(0, 1)})

    def test_disk_files_are_json(self, tmp_path):
        store = NondetStore(str(tmp_path))
        store.put("abc", frozenset({(3, 4)}))
        assert (tmp_path / "abc.nondet.json").exists()


class TestNondetAnalyzer:
    def test_timestamp_results_flagged(self, machine_513):
        analyzer = NondetAnalyzer(machine_513)
        marks = analyzer.nondet_paths(seed_programs()["read_uptime"])
        assert marks  # the uptime line varies with boot offset

    def test_deterministic_program_unflagged(self, machine_513):
        analyzer = NondetAnalyzer(machine_513)
        marks = analyzer.nondet_paths(seed_programs()["read_ptype"])
        assert marks == frozenset()

    def test_clock_gettime_flagged(self, machine_513):
        analyzer = NondetAnalyzer(machine_513)
        marks = analyzer.nondet_paths(prog(("clock_gettime", 0),))
        assert marks

    def test_results_cached_per_program(self, machine_513):
        analyzer = NondetAnalyzer(machine_513)
        program = seed_programs()["read_uptime"]
        analyzer.nondet_paths(program)
        runs_after_first = analyzer.runs_executed
        analyzer.nondet_paths(program)
        assert analyzer.runs_executed == runs_after_first

    def test_one_run_per_offset(self, machine_513):
        analyzer = NondetAnalyzer(machine_513, offsets=(0, 5))
        analyzer.nondet_paths(prog(("getpid",),))
        assert analyzer.runs_executed == 2

    def test_conntrack_dump_structurally_nondet(self):
        """The bug-F precondition: on the leaky kernel the dump varies
        across boot offsets even without any sender activity."""
        from repro.kernel import known_bug_kernel
        from repro.vm import Machine, MachineConfig

        machine = Machine(MachineConfig(bugs=known_bug_kernel("F")))
        marks = NondetAnalyzer(machine).nondet_paths(
            seed_programs()["read_nf_conntrack"])
        assert marks

    def test_stat_of_proc_file_has_nondet_times(self, machine_513):
        marks = NondetAnalyzer(machine_513).nondet_paths(
            seed_programs()["stat_proc"])
        assert marks  # st_mtime of a proc inode reports "now"
