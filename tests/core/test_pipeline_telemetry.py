"""Campaign restore/cache telemetry and distributed-order guarantees."""

from __future__ import annotations

import pytest

from repro.core import CampaignConfig, Kit
from repro.corpus.seeds import seed_programs
from repro.kernel import linux_5_13
from repro.vm import MachineConfig


def seed_list():
    return list(seed_programs().values())


def small_config(**overrides):
    base = dict(machine=MachineConfig(bugs=linux_5_13()),
                corpus=seed_list()[:16], strategy="df-ia")
    base.update(overrides)
    return CampaignConfig(**base)


class TestRestoreTelemetry:
    def test_sequential_campaign_counts_restores(self):
        stats = Kit(small_config()).run().stats
        assert stats.restore_count > 0
        assert stats.segmented_restores == stats.restore_count
        assert stats.full_restores == 0
        assert stats.segments_restored > 0
        assert stats.segments_skipped > stats.segments_restored
        assert 0.0 < stats.segments_skipped_rate() < 1.0
        assert stats.restore_seconds > 0.0
        # Stage attribution sums to the campaign total.
        staged = (stats.profile_restore_seconds +
                  stats.execution_restore_seconds +
                  stats.diagnosis_restore_seconds)
        assert staged == pytest.approx(stats.restore_seconds)
        assert stats.profile_restore_seconds > 0.0
        assert stats.execution_restore_seconds > 0.0

    def test_full_restore_campaign_counts_full(self):
        config = small_config(
            machine=MachineConfig(bugs=linux_5_13(), full_restore=True),
            diagnose=False)
        stats = Kit(config).run().stats
        assert stats.full_restores == stats.restore_count > 0
        assert stats.segmented_restores == 0
        assert stats.segments_restored == 0 and stats.segments_skipped == 0

    def test_cache_hit_rates_populated(self):
        stats = Kit(small_config()).run().stats
        assert stats.baseline_hits + stats.baseline_misses > 0
        assert stats.nondet_cache_hits + stats.nondet_cache_misses > 0
        assert 0.0 <= stats.baseline_hit_rate() <= 1.0
        assert 0.0 <= stats.nondet_cache_hit_rate() <= 1.0
        # Many cases share receiver programs, so baselines must hit.
        assert stats.baseline_hits > 0

    def test_distributed_telemetry_sums_workers(self):
        stats = Kit(small_config(workers=2, diagnose=False)).run().stats
        assert stats.restore_count > 0
        assert stats.segmented_restores > 0
        assert stats.execution_restore_seconds > 0.0
        assert stats.baseline_hits + stats.baseline_misses > 0


class TestSenderCacheTelemetry:
    def test_sender_cache_stats_populated(self):
        stats = Kit(small_config()).run().stats
        assert stats.sender_cache_hits + stats.sender_cache_misses > 0
        # Repeated senders in a 16-program corpus guarantee hits.
        assert stats.sender_cache_hits > 0
        assert 0.0 < stats.sender_cache_hit_rate() <= 1.0
        assert stats.sender_cache_entries > 0
        assert stats.sender_cache_bytes > 0
        # In-process runs attribute every delta to the main process.
        assert set(stats.sender_cache_bytes_by_owner) == {"main"}
        assert sum(stats.sender_cache_bytes_by_owner.values()) \
            == stats.sender_cache_bytes

    def test_disabled_cache_reports_zeros(self):
        stats = Kit(small_config(sender_cache=False)).run().stats
        assert stats.sender_cache_hits == 0
        assert stats.sender_cache_misses == 0
        assert stats.sender_cache_entries == 0
        assert stats.sender_cache_bytes == 0
        assert stats.sender_cache_bytes_by_owner == {}
        assert stats.diagnosis_prefix_reuses == 0
        assert stats.sender_cache_hit_rate() == 0.0

    def test_distributed_bytes_attributed_to_workers(self):
        stats = Kit(small_config(workers=2, diagnose=False)).run().stats
        assert stats.sender_cache_hits + stats.sender_cache_misses > 0
        assert stats.sender_cache_bytes > 0
        owners = set(stats.sender_cache_bytes_by_owner)
        assert owners and all(o.startswith("worker-") for o in owners)

    def test_prefix_memo_serves_diagnosis_reruns(self):
        stats = Kit(small_config()).run().stats
        assert stats.diagnosis_reruns > 0
        assert stats.diagnosis_prefix_reuses == stats.diagnosis_reruns


class TestDistributedOrdering:
    def test_reports_keep_case_order_under_affinity_schedule(self):
        """The two-level (sender hash, receiver hash) sort must be
        invisible in the output order."""
        single = Kit(small_config(workers=0, diagnose=False)).run()
        distributed = Kit(small_config(workers=3, diagnose=False)).run()

        def case_keys(result):
            return [(r.case.sender.hash_hex, r.case.receiver.hash_hex)
                    for r in result.reports]

        assert case_keys(distributed) == case_keys(single)
        assert distributed.stats.outcomes == single.stats.outcomes
