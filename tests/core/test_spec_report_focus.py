"""Tests for spec introspection/coverage and the generator's focus mode."""

import pytest

from repro.core.pipeline import CampaignConfig, Kit
from repro.core.spec import default_specification
from repro.core.spec_report import spec_coverage
from repro.corpus.generator import ProgramGenerator
from repro.corpus.seeds import seed_list
from repro.kernel import linux_5_13
from repro.kernel.syscalls import DECLS
from repro.vm import MachineConfig
from repro.vm.executor import SyscallRecord


def record(name, arg_kinds=None, ret_kind=None):
    return SyscallRecord(0, name, (), 0, 0, {}, arg_kinds or {}, ret_kind)


class TestSpecIntrospection:
    def test_describe_lists_kinds_and_checkers(self):
        text = default_specification().describe()
        assert "fd_proc_net" in text
        assert "check_priority" in text

    def test_matching_entries_for_fd_kind(self):
        spec = default_specification()
        entries = spec.matching_entries(
            record("pread64", {"fd": "fd_proc_net"}))
        assert "fd_proc_net" in entries

    def test_matching_entries_for_checker(self):
        spec = default_specification()
        assert "check_priority" in spec.matching_entries(
            record("getpriority"))

    def test_unprotected_call_matches_nothing(self):
        spec = default_specification()
        assert spec.matching_entries(record("crypto_alloc")) == []


class TestSpecCoverage:
    @pytest.fixture(scope="class")
    def campaign(self):
        config = CampaignConfig(machine=MachineConfig(bugs=linux_5_13()),
                                corpus=seed_list())
        return Kit(config).run()

    def test_fired_entries_cover_the_reports(self, campaign):
        spec = default_specification()
        coverage = spec_coverage(campaign, spec)
        assert "fd_proc_net" in coverage.fired  # ptype/sockstat reports
        assert sum(coverage.fired.values()) >= len(campaign.reports)

    def test_every_report_admitted_by_something(self, campaign):
        coverage = spec_coverage(campaign, default_specification())
        for index, entries in coverage.per_report.items():
            assert entries, f"report {index} admitted by no spec entry"

    def test_unused_entries_reported(self, campaign):
        coverage = spec_coverage(campaign, default_specification())
        # The seed campaign has no io_uring report on 5.13 (bug E is a
        # different kernel), so that descriptor kind never fires.
        assert "fd_io_uring" in coverage.unused

    def test_fired_and_unused_partition_the_spec(self, campaign):
        spec = default_specification()
        coverage = spec_coverage(campaign, spec)
        entries = set(coverage.fired) | set(coverage.unused)
        expected = set(spec.protected_kinds) | \
            {checker.__name__ for checker in spec.checkers}
        assert entries == expected

    def test_render_is_textual(self, campaign):
        text = spec_coverage(campaign, default_specification()).render()
        assert "spec entries by reports admitted:" in text
        assert "never fired" in text


class TestGeneratorFocus:
    def test_focus_restricts_primary_calls(self):
        generator = ProgramGenerator(seed=1, focus=["getpriority"])
        for __ in range(20):
            for call in generator.generate():
                assert call.name == "getpriority"

    def test_focus_still_synthesizes_producers(self):
        generator = ProgramGenerator(seed=2, focus=["bind"])
        names = set()
        for __ in range(30):
            names.update(call.name for call in generator.generate())
        assert "bind" in names
        assert "socket" in names  # producer pulled in for the fd argument

    def test_unknown_focus_rejected(self):
        with pytest.raises(ValueError):
            ProgramGenerator(focus=["not_a_syscall"])

    def test_empty_focus_rejected(self):
        with pytest.raises(ValueError):
            ProgramGenerator(focus=[])

    def test_focus_accepts_all_declared_names(self):
        ProgramGenerator(focus=list(DECLS.names()))
