"""Unit tests for detection (§4.3) and diagnosis (Algorithm 2, §4.4)."""

import pytest

from repro.core.detection import Detector, Outcome
from repro.core.diagnosis import Diagnoser
from repro.core.generation import TestCase
from repro.core.spec import default_specification
from repro.corpus.program import prog
from repro.corpus.seeds import seed_programs
from repro.kernel import fixed_kernel, known_bug_kernel, linux_5_13
from repro.vm import Machine, MachineConfig


@pytest.fixture(scope="module")
def detector_513():
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    return Detector(machine, default_specification())


@pytest.fixture(scope="module")
def detector_fixed():
    machine = Machine(MachineConfig(bugs=fixed_kernel()))
    return Detector(machine, default_specification())


def case(sender, receiver):
    return TestCase(0, 1, sender, receiver)


def seed_case(sender_name, receiver_name):
    seeds = seed_programs()
    return case(seeds[sender_name], seeds[receiver_name])


class TestDetectionOutcomes:
    def test_no_interference_passes(self, detector_513):
        result = detector_513.check_case(seed_case("get_hostname", "read_ptype"))
        assert result.outcome is Outcome.PASS

    def test_bug1_reported(self, detector_513):
        result = detector_513.check_case(seed_case("packet_socket", "read_ptype"))
        assert result.outcome is Outcome.REPORT
        assert result.report.interfered_indices == [1]

    def test_bug2_reported(self, detector_513):
        result = detector_513.check_case(
            seed_case("flowlabel_register_exclusive", "flowlabel_send"))
        assert result.outcome is Outcome.REPORT

    def test_bug3_reported(self, detector_513):
        result = detector_513.check_case(seed_case("rds_bind", "rds_bind"))
        assert result.outcome is Outcome.REPORT

    def test_bug5_and_8_reported(self, detector_513):
        result = detector_513.check_case(seed_case("udp_send", "read_sockstat"))
        assert result.outcome is Outcome.REPORT

    def test_bug6_reported(self, detector_513):
        result = detector_513.check_case(
            seed_case("socket_cookie", "socket_cookie"))
        assert result.outcome is Outcome.REPORT

    def test_fixed_kernel_reports_nothing(self, detector_fixed):
        for sender, receiver in (
            ("packet_socket", "read_ptype"),
            ("flowlabel_register_exclusive", "flowlabel_send"),
            ("rds_bind", "rds_bind"),
            ("tcp_socket", "read_sockstat"),
            ("socket_cookie", "socket_cookie"),
            ("sctp_assoc", "sctp_assoc"),
            ("udp_send", "read_protocols"),
        ):
            result = detector_fixed.check_case(seed_case(sender, receiver))
            assert result.outcome is Outcome.PASS, (sender, receiver)

    def test_nondet_divergence_filtered(self, detector_513):
        """stat of a proc file diverges only in clock-driven fields once a
        sender has run (time advanced) — the filter must absorb it."""
        result = detector_513.check_case(seed_case("tcp_socket", "stat_proc"))
        assert result.outcome in (Outcome.PASS, Outcome.FILTERED_NONDET)

    def test_unprotected_divergence_filtered(self, detector_513):
        result = detector_513.check_case(seed_case("crypto_take_ref",
                                                   "read_crypto"))
        assert result.outcome is Outcome.FILTERED_RESOURCE

    def test_bug_f_masked_by_nondet_filter(self):
        machine = Machine(MachineConfig(bugs=known_bug_kernel("F")))
        detector = Detector(machine, default_specification())
        result = detector.check_case(seed_case("udp_send", "read_nf_conntrack"))
        assert result.outcome is Outcome.FILTERED_NONDET
        assert result.raw_diff_count > 0

    def test_report_carries_trace_evidence(self, detector_513):
        result = detector_513.check_case(seed_case("packet_socket", "read_ptype"))
        report = result.report
        assert report.diffs
        assert report.sender_records and report.receiver_with_records
        rendered = report.render()
        assert "sender program" in rendered
        assert "interfered receiver calls" in rendered

    def test_interference_set_matches_check_case(self, detector_513):
        seeds = seed_programs()
        indices = detector_513.interference_set(seeds["packet_socket"],
                                                seeds["read_ptype"])
        assert indices == {1}

    def test_baseline_caching_reduces_runs(self, detector_513):
        runner = detector_513.runner
        before = runner.cases_executed
        detector_513.check_case(seed_case("packet_socket", "read_ptype"))
        detector_513.check_case(seed_case("packet_socket_ip", "read_ptype"))
        # Two cases, but the receiver-alone baseline is shared.
        assert runner.cases_executed == before + 2


class TestDiagnosis:
    def test_culprit_pair_identified(self, detector_513):
        result = detector_513.check_case(seed_case("packet_socket", "read_ptype"))
        culprits = Diagnoser(detector_513).diagnose(result.report)
        assert len(culprits) == 1
        assert culprits[0].sender_index == 0  # the socket() call
        assert culprits[0].receiver_index == 1  # the pread64

    def test_culprit_among_noise_calls(self, detector_513):
        """Only the packet socket call is responsible; getpid noise is not."""
        seeds = seed_programs()
        noisy_sender = prog(("getpid",),).concatenate(
            seeds["packet_socket"]).concatenate(prog(("gethostname",),))
        result = detector_513.check_case(case(noisy_sender, seeds["read_ptype"]))
        culprits = Diagnoser(detector_513).diagnose(result.report)
        assert [c.sender_index for c in culprits] == [1]

    def test_first_interfered_receiver_call_reported(self, detector_513):
        """Dependent downstream divergence collapses onto the first call."""
        seeds = seed_programs()
        result = detector_513.check_case(
            seed_case("flowlabel_register_exclusive", "flowlabel_send"))
        culprits = Diagnoser(detector_513).diagnose(result.report)
        assert culprits
        assert culprits[0].receiver_index == min(result.report.interfered_indices)

    def test_two_independent_culprits(self, detector_513):
        """A sender triggering two unrelated bugs yields two culprit pairs:
        the packet socket (bug #1) and the exclusive-label registration
        (bug #2) each mask a different receiver divergence."""
        seeds = seed_programs()
        sender = seeds["packet_socket"].concatenate(
            seeds["flowlabel_register_exclusive"])
        receiver = seeds["read_ptype"].concatenate(seeds["flowlabel_send"])
        result = detector_513.check_case(case(sender, receiver))
        culprits = Diagnoser(detector_513).diagnose(result.report)
        assert len(culprits) == 2
        sender_indices = {c.sender_index for c in culprits}
        assert sender_indices == {0, 2}  # socket(AF_PACKET) and setsockopt

    def test_one_call_explaining_all_divergence_is_single_culprit(self,
                                                                  detector_513):
        """Two divergent receiver calls, one root cause: a packet socket
        moves both the ptype list (bug #1) and the global socket counter
        (bug #5), so Algorithm 2 must attribute both to one sender call."""
        seeds = seed_programs()
        sender = seeds["packet_socket"].concatenate(seeds["tcp_socket"])
        receiver = seeds["read_ptype"].concatenate(seeds["read_sockstat"])
        result = detector_513.check_case(case(sender, receiver))
        culprits = Diagnoser(detector_513).diagnose(result.report)
        assert [c.sender_index for c in culprits] == [0]

    def test_diagnosis_rerun_accounting(self, detector_513):
        result = detector_513.check_case(seed_case("packet_socket", "read_ptype"))
        diagnoser = Diagnoser(detector_513)
        diagnoser.diagnose(result.report)
        assert diagnoser.reruns >= 1

    def test_report_culprits_stored_on_report(self, detector_513):
        result = detector_513.check_case(seed_case("packet_socket", "read_ptype"))
        report = result.report
        Diagnoser(detector_513).diagnose(report)
        assert report.culprit_pairs
