"""Tests for report minimization."""

import pytest

from repro.core.detection import Detector, Outcome
from repro.core.diagnosis import Diagnoser
from repro.core.generation import TestCase
from repro.core.minimize import dependency_closure, minimize_report, reduce_to
from repro.core.spec import default_specification
from repro.corpus.program import prog
from repro.corpus.seeds import seed_programs
from repro.kernel import linux_5_13
from repro.vm import Machine, MachineConfig


@pytest.fixture(scope="module")
def detector():
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    return Detector(machine, default_specification())


def diagnosed_report(detector, sender, receiver):
    result = detector.check_case(TestCase(0, 1, sender, receiver))
    assert result.outcome is Outcome.REPORT
    Diagnoser(detector).diagnose(result.report)
    return result.report


class TestDependencyClosure:
    def test_direct_dependency_kept(self):
        program = prog(("socket", 2, 1, 6), ("bind", "r0", 1, 2))
        assert dependency_closure(program, [1]) == {0, 1}

    def test_transitive_dependency_kept(self):
        program = prog(("socket", 2, 1, 6), ("dup", "r0"), ("bind", "r1", 1, 2))
        assert dependency_closure(program, [2]) == {0, 1, 2}

    def test_unrelated_calls_excluded(self):
        program = prog(("getpid",), ("socket", 2, 1, 6), ("bind", "r1", 1, 2))
        assert dependency_closure(program, [2]) == {1, 2}

    def test_reduce_to_holes_out_the_rest(self):
        program = prog(("getpid",), ("socket", 2, 1, 6), ("bind", "r1", 1, 2))
        reduced = reduce_to(program, [2])
        assert reduced.live_call_indices() == [1, 2]
        assert reduced.calls[0] is None


class TestMinimizeReport:
    def test_noise_stripped_from_sender(self, detector):
        seeds = seed_programs()
        noisy_sender = prog(("getpid",), ("gethostname",)).concatenate(
            seeds["packet_socket"]).concatenate(prog(("getpid",),))
        report = diagnosed_report(detector, noisy_sender, seeds["read_ptype"])
        minimized = minimize_report(detector, report)
        assert minimized.verified
        assert minimized.sender_calls == 1
        assert "socket" in minimized.sender.serialize()

    def test_receiver_dependencies_preserved(self, detector):
        seeds = seed_programs()
        report = diagnosed_report(detector, seeds["packet_socket"],
                                  seeds["read_ptype"])
        minimized = minimize_report(detector, report)
        assert minimized.verified
        # The pread64 needs its open(): both calls must survive.
        assert minimized.receiver_calls == 2

    def test_minimized_pair_still_triggers(self, detector):
        seeds = seed_programs()
        report = diagnosed_report(
            detector, seeds["flowlabel_register_exclusive"],
            seeds["flowlabel_send"])
        minimized = minimize_report(detector, report)
        assert minimized.verified
        outcome = detector.check_case(
            TestCase(0, 1, minimized.sender, minimized.receiver))
        assert outcome.outcome is Outcome.REPORT

    def test_undiagnosed_report_kept_verbatim(self, detector):
        seeds = seed_programs()
        result = detector.check_case(
            TestCase(0, 1, seeds["packet_socket"], seeds["read_ptype"]))
        minimized = minimize_report(detector, result.report)  # no diagnosis
        assert not minimized.verified
        assert minimized.sender == seeds["packet_socket"]

    def test_render_shows_both_programs(self, detector):
        seeds = seed_programs()
        report = diagnosed_report(detector, seeds["packet_socket"],
                                  seeds["read_ptype"])
        text = minimize_report(detector, report).render()
        assert "# sender" in text and "# receiver" in text
        assert "verified" in text

    def test_multi_culprit_minimization(self, detector):
        seeds = seed_programs()
        sender = seeds["packet_socket"].concatenate(
            seeds["flowlabel_register_exclusive"])
        receiver = seeds["read_ptype"].concatenate(seeds["flowlabel_send"])
        report = diagnosed_report(detector, sender, receiver)
        minimized = minimize_report(detector, report)
        assert minimized.verified
        # Both culprit sender calls (and the flow-label socket dep) stay.
        assert minimized.sender_calls == 3
