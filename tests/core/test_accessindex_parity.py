"""Merge-join pairing parity: columnar backend ≡ in-memory index.

The load-bearing property of the on-disk columnar access index: fed the
same profiles, the streamed merge-join must reproduce the in-memory
:class:`DataFlowIndex` *byte-for-byte* — identical overlap rows in
identical point order (generation's reservoir sampling consumes its RNG
in that order), hence an identical Table-4 pair set, and identical bug
fingerprints — across seeds and every Table-3 kernel.
"""

from __future__ import annotations

import os

import pytest

from repro.core import CampaignConfig, Kit
from repro.core.accessindex import ColumnarAccessIndex, stack_key
from repro.core.clustering import strategy_by_name
from repro.core.dataflow import DataFlowIndex
from repro.core.generation import TestCaseGenerator
from repro.core.known_bugs import SCENARIOS, TABLE3_ROWS, scenario_machine_config
from repro.core.profile import Profiler
from repro.core.profile_store import ProfileStore, machine_fingerprint
from repro.core.spec import default_specification
from repro.corpus import build_corpus
from repro.kernel import linux_5_13
from repro.vm import Machine, MachineConfig

CONFIGS = {"5.13": MachineConfig(bugs=linux_5_13())}
CONFIGS.update({row: scenario_machine_config(SCENARIOS[row])
                for row in TABLE3_ROWS})


@pytest.fixture(scope="module")
def profiled_513():
    corpus = build_corpus(40, seed=1)
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    profiles = Profiler(machine).profile_corpus(corpus)
    return corpus, profiles


def _columnar(profiles, run_points=64):
    # Tiny run_points so every test exercises multi-run heap merges.
    return ColumnarAccessIndex.build(iter(profiles), default_specification(),
                                     run_points=run_points)


class TestIndexParity:
    def test_overlap_rows_byte_identical(self, profiled_513):
        __, profiles = profiled_513
        mem = DataFlowIndex.build(profiles, default_specification())
        with _columnar(profiles) as col:
            assert list(mem.iter_overlaps()) == list(col.iter_overlaps())
            assert mem.overlap_addresses() == col.overlap_addresses()
            assert mem.total_flow_count() == col.total_flow_count()

    def test_flows_at_matches(self, profiled_513):
        __, profiles = profiled_513
        mem = DataFlowIndex.build(profiles, default_specification())
        with _columnar(profiles) as col:
            addr = mem.overlap_addresses()[0]
            assert list(mem.flows_at(addr)) == list(col.flows_at(addr))

    @pytest.mark.parametrize("run_points", [1, 16, 100000])
    def test_run_segmentation_never_changes_the_join(self, profiled_513,
                                                     run_points):
        __, profiles = profiled_513
        mem = DataFlowIndex.build(profiles, default_specification())
        with _columnar(profiles, run_points=run_points) as col:
            if run_points == 1:
                assert col.run_segments > 2
            assert list(mem.iter_overlaps()) == list(col.iter_overlaps())

    def test_index_is_reiterable(self, profiled_513):
        __, profiles = profiled_513
        with _columnar(profiles) as col:
            assert list(col.iter_overlaps()) == list(col.iter_overlaps())

    def test_unsealed_query_raises(self):
        index = ColumnarAccessIndex()
        with pytest.raises(RuntimeError):
            list(index.iter_overlaps())
        index.close()

    def test_close_removes_owned_directory(self, profiled_513):
        __, profiles = profiled_513
        col = _columnar(profiles)
        directory = col.directory
        assert os.path.isdir(directory) and col.bytes_on_disk() > 0
        col.close()
        assert not os.path.exists(directory)


class TestPairSetParity:
    @pytest.mark.parametrize("strategy", ["df-ia", "df-st-1", "df-st-2", "df"])
    @pytest.mark.parametrize("rep_seed", [0, 7])
    def test_table4_pair_set_identical(self, profiled_513, strategy,
                                       rep_seed):
        corpus, profiles = profiled_513
        spec = default_specification()
        mem_result = TestCaseGenerator(corpus, profiles, spec).generate(
            strategy_by_name(strategy), rep_seed=rep_seed)
        with _columnar(profiles) as col:
            col_result = TestCaseGenerator(corpus, None, spec,
                                           index=col).generate(
                strategy_by_name(strategy), rep_seed=rep_seed)
        assert [(c.pair, tuple(c.cluster_keys))
                for c in mem_result.test_cases] \
            == [(c.pair, tuple(c.cluster_keys))
                for c in col_result.test_cases]
        assert mem_result.cluster_count == col_result.cluster_count
        assert mem_result.flow_count == col_result.flow_count
        assert mem_result.overlap_addresses == col_result.overlap_addresses

    @pytest.mark.parametrize("corpus_seed", [1, 2, 3])
    def test_pair_sets_across_seeds(self, corpus_seed):
        corpus = build_corpus(24, seed=corpus_seed)
        machine = Machine(CONFIGS["5.13"])
        profiles = Profiler(machine).profile_corpus(corpus)
        spec = default_specification()
        mem = TestCaseGenerator(corpus, profiles, spec).generate(
            strategy_by_name("df-ia"))
        with _columnar(profiles) as col:
            streamed = TestCaseGenerator(corpus, None, spec,
                                         index=col).generate(
                strategy_by_name("df-ia"))
        assert [c.pair for c in mem.test_cases] \
            == [c.pair for c in streamed.test_cases]


class TestCampaignParity:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_bug_fingerprints_identical_on_every_kernel(self, config_name):
        """Property: a columnar-backend campaign finds the same bugs via
        the same reports as the in-memory one, on every Table-3 kernel."""
        def run(backend):
            return Kit(CampaignConfig(
                machine=CONFIGS[config_name], corpus_size=16,
                max_test_cases=16, index_backend=backend)).run()

        mem, col = run("memory"), run("columnar")
        assert [c.pair for c in mem.generation.test_cases] \
            == [c.pair for c in col.generation.test_cases]
        assert sorted(mem.bugs_found()) == sorted(col.bugs_found())
        assert len(mem.reports) == len(col.reports)
        for a, b in zip(mem.reports, col.reports):
            assert a.case.pair == b.case.pair
            assert a.interfered_indices == b.interfered_indices
            assert a.culprit_pairs == b.culprit_pairs
        assert (mem.stats.flow_count, mem.stats.cluster_count,
                mem.stats.overlap_addresses) \
            == (col.stats.flow_count, col.stats.cluster_count,
                col.stats.overlap_addresses)
        assert col.stats.index_run_segments >= 1
        assert col.stats.index_bytes > 0


class TestStackSidecar:
    def test_stack_key_is_stable(self):
        assert stack_key((1, 2, 3)) == stack_key((1, 2, 3))
        assert stack_key((1, 2, 3)) != stack_key((3, 2, 1))
        assert 0 <= stack_key(()) < 2 ** 64


class TestProfileStoreSharding:
    def test_put_writes_into_fanout_shard(self, tmp_path, profiled_513):
        __, profiles = profiled_513
        store = ProfileStore(str(tmp_path), "fp")
        store.put(profiles[0])
        shard = profiles[0].program.hash_hex[:2]
        expected = os.path.join(str(tmp_path), "fp", shard,
                                profiles[0].program.hash_hex + ".profile")
        assert os.path.exists(expected)
        assert store.entries_written == 1
        assert store.bytes_written == os.path.getsize(expected)
        assert store.get(profiles[0].program) is not None
        assert store.hits == 1

    def test_legacy_flat_layout_still_hits(self, tmp_path, profiled_513):
        __, profiles = profiled_513
        store = ProfileStore(str(tmp_path), "fp")
        store.put(profiles[0])
        sharded = os.path.join(str(tmp_path), "fp",
                               profiles[0].program.hash_hex[:2],
                               profiles[0].program.hash_hex + ".profile")
        flat = os.path.join(str(tmp_path), "fp",
                            profiles[0].program.hash_hex + ".profile")
        os.replace(sharded, flat)  # simulate a pre-sharding cache
        fresh = ProfileStore(str(tmp_path), "fp")
        assert fresh.get(profiles[0].program) is not None
        assert fresh.hits == 1 and fresh.misses == 0

    def test_fingerprint_unchanged_by_sharding(self):
        fp = machine_fingerprint(MachineConfig(bugs=linux_5_13()))
        assert len(fp) == 16
