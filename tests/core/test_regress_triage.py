"""Tests for campaign regression diffing and triage sessions."""

import pytest

from repro.core.oracle import classify
from repro.core.pipeline import CampaignConfig, Kit
from repro.core.regress import diff_campaigns
from repro.core.triage import TriageSession, Verdict
from repro.corpus.seeds import seed_list
from repro.kernel import BugFlags, fixed_kernel, linux_5_13
from repro.vm import MachineConfig


def run_campaign(bugs):
    config = CampaignConfig(machine=MachineConfig(bugs=bugs),
                            corpus=seed_list())
    return Kit(config).run()


@pytest.fixture(scope="module")
def buggy_campaign():
    return run_campaign(linux_5_13())


@pytest.fixture(scope="module")
def fixed_campaign():
    return run_campaign(fixed_kernel())


@pytest.fixture(scope="module")
def partial_campaign():
    """5.13 with the ptype bug patched but everything else intact."""
    return run_campaign(linux_5_13().copy(ptype_leak=False))


class TestDiffCampaigns:
    def test_patching_everything_resolves_bug_groups(self, buggy_campaign,
                                                     fixed_campaign):
        diff = diff_campaigns(buggy_campaign, fixed_campaign)
        assert diff.resolved
        # FP groups (st_dev minors) persist on both kernels: the fix
        # target is the bug groups, not the spec imperfection.
        for key in diff.persisting:
            members = diff.persisting[key]
            assert all(classify(m) in ("FP", "UI") for m in members)

    def test_nothing_introduced_by_the_fixes(self, buggy_campaign,
                                             fixed_campaign):
        diff = diff_campaigns(buggy_campaign, fixed_campaign)
        assert not diff.introduced

    def test_partial_patch_resolves_only_its_groups(self, buggy_campaign,
                                                    partial_campaign):
        diff = diff_campaigns(buggy_campaign, partial_campaign)
        resolved_receivers = {key[0] for key in diff.resolved}
        assert any("ptype" in sig for sig in resolved_receivers)
        persisting_receivers = {key[0] for key in diff.persisting}
        assert any("sockstat" in sig for sig in persisting_receivers)

    def test_reverse_diff_reports_introductions(self, buggy_campaign,
                                                partial_campaign):
        diff = diff_campaigns(partial_campaign, buggy_campaign)
        assert any("ptype" in key[0] for key in diff.introduced)

    def test_self_diff_is_all_persisting(self, buggy_campaign):
        diff = diff_campaigns(buggy_campaign, buggy_campaign)
        assert not diff.introduced and not diff.resolved
        assert len(diff.persisting) == buggy_campaign.groups.agg_r_count

    def test_agg_rs_level_is_finer(self, buggy_campaign):
        coarse = diff_campaigns(buggy_campaign, buggy_campaign)
        fine = diff_campaigns(buggy_campaign, buggy_campaign,
                              level="agg-rs")
        assert len(fine.persisting) >= len(coarse.persisting)
        assert len(fine.persisting) == buggy_campaign.groups.agg_rs_count

    def test_unknown_level_rejected(self, buggy_campaign):
        with pytest.raises(ValueError):
            diff_campaigns(buggy_campaign, buggy_campaign, level="agg-x")

    def test_render_mentions_counts(self, buggy_campaign, fixed_campaign):
        text = diff_campaigns(buggy_campaign, fixed_campaign).render()
        assert "resolved:" in text and "introduced: 0" in text

    def test_clean_fix_predicate(self, buggy_campaign):
        empty = run_campaign(fixed_kernel())
        # fixed-vs-fixed persists FP groups, so not a "clean fix"…
        assert not diff_campaigns(empty, empty).clean_fix or \
            empty.groups.agg_rs_count == 0


class TestTriageSession:
    def test_pending_starts_at_group_count(self, buggy_campaign):
        session = TriageSession(buggy_campaign.groups)
        assert session.reports_to_examine() == \
            buggy_campaign.groups.agg_rs_count

    def test_confirm_bug_settles_the_group(self, buggy_campaign):
        session = TriageSession(buggy_campaign.groups)
        key = session.pending_groups()[0]
        session.confirm_bug(key, note="matches Table 2")
        assert key not in session.pending_groups()
        assert key in session.confirmed()

    def test_representative_is_a_group_member(self, buggy_campaign):
        session = TriageSession(buggy_campaign.groups)
        key = session.pending_groups()[0]
        assert session.representative(key) in \
            buggy_campaign.groups.agg_rs[key]

    def test_fp_cascade_over_receiver_group(self, buggy_campaign):
        session = TriageSession(buggy_campaign.groups)
        # Find a receiver signature with >= 2 sender groups.
        by_receiver = {}
        for key in buggy_campaign.groups.agg_rs:
            by_receiver.setdefault(key[0], []).append(key)
        multi = [keys for keys in by_receiver.values() if len(keys) > 1]
        if not multi:
            pytest.skip("no multi-sender receiver group in this campaign")
        keys = multi[0]
        settled = session.drop_false_positive(keys[0], whole_receiver=True)
        assert set(settled) == set(keys)
        assert all(k in session.dropped() for k in keys)

    def test_investigating_stays_pending(self, buggy_campaign):
        session = TriageSession(buggy_campaign.groups)
        key = session.pending_groups()[0]
        session.mark_investigating(key, "odd trace")
        assert key in session.pending_groups()

    def test_unknown_group_rejected(self, buggy_campaign):
        session = TriageSession(buggy_campaign.groups)
        with pytest.raises(KeyError):
            session.confirm_bug(("nope", "nope"))

    def test_summary_counts(self, buggy_campaign):
        session = TriageSession(buggy_campaign.groups)
        key = session.pending_groups()[0]
        session.confirm_bug(key)
        assert "1 confirmed" in session.summary()

    def test_save_and_load_decisions(self, buggy_campaign, tmp_path):
        session = TriageSession(buggy_campaign.groups)
        first, second = session.pending_groups()[:2]
        session.confirm_bug(first, "yes")
        session.drop_false_positive(second, "dev minor")
        path = str(tmp_path / "triage.json")
        session.save(path)

        fresh = TriageSession(buggy_campaign.groups)
        applied = fresh.load(path)
        assert applied == 2
        assert fresh.decisions[first].verdict is Verdict.CONFIRMED_BUG
        assert fresh.decisions[second].verdict is Verdict.FALSE_POSITIVE

    def test_decisions_survive_unrelated_campaigns(self, buggy_campaign,
                                                   fixed_campaign, tmp_path):
        """Loading decisions onto a campaign without those groups is a
        no-op, not an error (kernel changed, groups moved)."""
        session = TriageSession(buggy_campaign.groups)
        key = session.pending_groups()[0]
        session.confirm_bug(key)
        path = str(tmp_path / "triage.json")
        session.save(path)
        other = TriageSession(fixed_campaign.groups)
        applied = other.load(path)
        assert applied <= 1
