"""Integration tests: known-bug scenarios (Table 3) and full campaigns."""

import pytest

from repro.core.known_bugs import (
    SCENARIOS,
    TABLE3_ROWS,
    reproduce_known_bug,
    scenario_corpus,
    scenario_machine_config,
)
from repro.core.oracle import FALSE_POSITIVE, UNDER_INVESTIGATION
from repro.core.pipeline import CampaignConfig, Kit
from repro.corpus.generator import build_corpus
from repro.corpus.seeds import seed_list
from repro.kernel import fixed_kernel, linux_5_13
from repro.kernel.namespaces import CLONE_NEWNS
from repro.vm import MachineConfig


class TestKnownBugScenarios:
    @pytest.mark.parametrize("bug_id", TABLE3_ROWS)
    def test_table3_rows_detected(self, bug_id):
        outcome = reproduce_known_bug(bug_id)
        assert outcome.detected, bug_id

    def test_bug_f_not_detected_for_the_right_reason(self):
        outcome = reproduce_known_bug("F")
        assert not outcome.detected
        # The divergence existed but was absorbed by the non-det filter.
        assert outcome.result.stats.outcomes.get("nondet", 0) >= 1

    def test_bug_g_not_detected(self):
        outcome = reproduce_known_bug("G")
        assert not outcome.detected
        # No raw divergence at all: the probe misses the runtime inode.
        assert outcome.result.stats.outcomes.get("report", 0) == 0

    def test_scenario_e_sender_runs_on_host(self):
        config = scenario_machine_config(SCENARIOS["E"])
        assert not config.sender.unshare_flags & CLONE_NEWNS
        assert config.receiver.unshare_flags & CLONE_NEWNS

    def test_scenario_kernel_versions(self):
        assert reproduce_known_bug("A").kernel_version == "4.4"

    def test_scenario_corpus_deduplicates(self):
        corpus = scenario_corpus(SCENARIOS["A"], extra=seed_list())
        hashes = [p.hash_hex for p in corpus]
        assert len(hashes) == len(set(hashes))

    def test_detection_requires_the_bug(self):
        """Running scenario A's corpus on a fixed kernel finds nothing."""
        scenario = SCENARIOS["A"]
        config = CampaignConfig(
            machine=MachineConfig(bugs=fixed_kernel()),
            corpus=scenario_corpus(scenario),
        )
        result = Kit(config).run()
        assert result.bugs_found() == set()


class TestCampaign:
    @pytest.fixture(scope="class")
    def seed_campaign(self):
        config = CampaignConfig(
            machine=MachineConfig(bugs=linux_5_13()),
            corpus=seed_list(),
            strategy="df-ia",
        )
        return Kit(config).run()

    def test_all_nine_table2_bugs_found(self, seed_campaign):
        assert set("123456789") <= seed_campaign.bugs_found()

    def test_table5_counters_are_monotone(self, seed_campaign):
        stats = seed_campaign.stats
        assert stats.cases_total >= stats.initial_reports
        assert stats.initial_reports >= stats.after_nondet
        assert stats.after_nondet >= stats.after_resource
        assert stats.after_resource == len(seed_campaign.reports)

    def test_outcome_counts_sum_to_cases(self, seed_campaign):
        stats = seed_campaign.stats
        assert sum(stats.outcomes.values()) == stats.cases_total

    def test_groups_do_not_exceed_reports(self, seed_campaign):
        groups = seed_campaign.groups
        reports = len(seed_campaign.reports)
        assert groups.agg_r_count <= groups.agg_rs_count <= reports

    def test_all_reports_diagnosed(self, seed_campaign):
        assert all(r.culprit_pairs for r in seed_campaign.reports)

    def test_generation_bookkeeping(self, seed_campaign):
        generation = seed_campaign.generation
        assert generation.strategy == "df-ia"
        assert generation.cluster_count >= len(generation.test_cases)
        assert generation.flow_count >= generation.cluster_count

    def test_fixed_kernel_campaign_is_clean(self):
        config = CampaignConfig(
            machine=MachineConfig(bugs=fixed_kernel()),
            corpus=seed_list(),
        )
        result = Kit(config).run()
        assert result.bugs_found() == set()
        # Imperfect-spec FPs (st_dev minors) may remain; that is the
        # paper's Table 6 FP column, not a bug finding.
        for label in result.labels():
            assert label in (FALSE_POSITIVE, UNDER_INVESTIGATION)

    def test_rand_strategy_runs_without_profiling(self):
        config = CampaignConfig(
            machine=MachineConfig(bugs=linux_5_13()),
            corpus=seed_list(),
            strategy="rand",
            rand_budget=30,
        )
        result = Kit(config).run()
        assert result.stats.profile_runs == 0
        assert result.stats.cases_total == 30

    def test_max_test_cases_cap(self):
        config = CampaignConfig(
            machine=MachineConfig(bugs=linux_5_13()),
            corpus=seed_list(),
            max_test_cases=5,
        )
        result = Kit(config).run()
        assert result.stats.cases_total <= 5

    def test_distributed_matches_single_machine(self):
        base = dict(machine=MachineConfig(bugs=linux_5_13()),
                    corpus=seed_list()[:20], strategy="df-ia")
        single = Kit(CampaignConfig(**base, workers=0)).run()
        distributed = Kit(CampaignConfig(**base, workers=3)).run()
        assert single.bugs_found() == distributed.bugs_found()
        assert single.stats.cases_total == distributed.stats.cases_total

    def test_generated_corpus_campaign(self):
        """A mixed seeds+random corpus still finds all nine bugs."""
        config = CampaignConfig(
            machine=MachineConfig(bugs=linux_5_13()),
            corpus=build_corpus(80, seed=11),
        )
        result = Kit(config).run()
        assert set("123456789") <= result.bugs_found()

    def test_nondet_disk_cache_reused(self, tmp_path):
        base = dict(machine=MachineConfig(bugs=linux_5_13()),
                    corpus=seed_list()[:12], nondet_dir=str(tmp_path))
        first = Kit(CampaignConfig(**base)).run()
        second = Kit(CampaignConfig(**base)).run()
        assert first.stats.nondet_runs > 0
        assert second.stats.nondet_runs == 0
