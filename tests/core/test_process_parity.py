"""Process-shard campaigns are bit-equivalent to the other modes
(ISSUE 6, satellite 4).

Work stealing redistributes *where* test cases execute; the inverse-
permutation merge guarantees the campaign cannot tell.  These tests pin
the strongest form of that claim: identical bug sets, identical
outcomes, identical culprit pairs, and byte-identical rendered reports
across in-process, thread, and process execution.  A light slice runs
in tier-1; the seeds-by-kernels sweep is behind ``-m chaos``.
"""

from __future__ import annotations

import os

import pytest

from repro.core.known_bugs import SCENARIOS, TABLE3_ROWS, scenario_machine_config
from repro.core.pipeline import CampaignConfig, Kit
from repro.kernel import linux_5_13
from repro.vm import MachineConfig, fork_available

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process shards require fork")

KERNELS = {"5.13": MachineConfig(bugs=linux_5_13())}
KERNELS.update({row: scenario_machine_config(SCENARIOS[row])
                for row in TABLE3_ROWS})


def _campaign(kernel_name, seed=3, **overrides):
    config = CampaignConfig(machine=KERNELS[kernel_name], corpus_size=16,
                            corpus_seed=seed, max_test_cases=16,
                            diagnose=True, **overrides)
    return Kit(config).run()


def _signature(result):
    """Everything execution order could conceivably perturb."""
    return {
        "bugs": sorted(result.bugs_found()),
        "outcomes": sorted(result.stats.outcomes.items()),
        "culprits": sorted(
            (report.case.sender.hash_hex, report.case.receiver.hash_hex,
             tuple(report.interfered_indices),
             tuple((pair.sender_index, pair.receiver_index)
                   for pair in report.culprit_pairs))
            for report in result.reports),
        "renders": sorted(report.render() for report in result.reports),
    }


def _no_shm_leaks():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return True
    return not [entry for entry in os.listdir("/dev/shm")
                if entry.startswith("kitshm")]


# -- tier-1 slice -------------------------------------------------------------


def test_process_mode_matches_thread_and_in_process():
    in_process = _campaign("5.13", workers=0)
    threaded = _campaign("5.13", workers=2)
    sharded = _campaign("5.13", workers=2, shard_mode="process")
    assert _signature(sharded) == _signature(threaded) == \
        _signature(in_process)
    assert _no_shm_leaks()


def test_process_mode_telemetry_accounts_for_the_pool():
    in_process = _campaign("5.13", workers=0)
    sharded = _campaign("5.13", workers=2, shard_mode="process")
    stats = sharded.stats
    assert stats.shard_mode == "process"
    assert stats.execution_workers == 2
    assert stats.shards_spawned >= 2 and stats.shards_died == 0
    # The base snapshot is always published to shared memory; the
    # campaign-end sweep reclaims every segment it created.
    assert stats.shm_segments >= 1 and stats.shm_bytes > 0
    assert _no_shm_leaks()
    # Shard-local execution telemetry merges losslessly: the §6.5
    # funnel sees exactly the cases the in-process run executed.
    assert stats.cases_executed == in_process.stats.cases_executed
    assert stats.shard_mode != in_process.stats.shard_mode


def test_thread_mode_reports_no_process_telemetry():
    threaded = _campaign("5.13", workers=2)
    assert threaded.stats.shard_mode == "thread"
    assert threaded.stats.shm_segments == 0
    assert threaded.stats.shards_spawned == 0


# -- the seeds-by-kernels sweep (deselected; run with -m chaos) ---------------


@pytest.mark.chaos
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
def test_process_parity_sweep(kernel_name, seed):
    threaded = _campaign(kernel_name, seed=seed, workers=2)
    sharded = _campaign(kernel_name, seed=seed, workers=2,
                        shard_mode="process")
    assert _signature(sharded) == _signature(threaded)
    assert _no_shm_leaks()
