"""Tests for campaign persistence and corpus coverage accounting."""

import json

import pytest

from repro.core.aggregation import receiver_signature, sender_signature
from repro.core.coverage import CoverageReport, coverage_of_profiles
from repro.core.oracle import classify_all
from repro.core.persist import (
    campaign_from_dict,
    campaign_to_dict,
    load_campaign,
    save_campaign,
)
from repro.core.pipeline import CampaignConfig, Kit
from repro.core.profile import Profiler
from repro.corpus.seeds import seed_list, seed_programs
from repro.kernel import linux_5_13
from repro.vm import Machine, MachineConfig


@pytest.fixture(scope="module")
def campaign():
    config = CampaignConfig(
        machine=MachineConfig(bugs=linux_5_13()),
        corpus=seed_list(),
    )
    return Kit(config).run()


class TestPersistence:
    def test_roundtrip_preserves_labels(self, campaign, tmp_path):
        path = str(tmp_path / "campaign.json")
        save_campaign(campaign, path)
        loaded = load_campaign(path)
        assert loaded.bugs_found() == campaign.bugs_found()

    def test_roundtrip_preserves_stats(self, campaign, tmp_path):
        path = str(tmp_path / "campaign.json")
        save_campaign(campaign, path)
        loaded = load_campaign(path)
        assert loaded.stats == campaign.stats

    def test_roundtrip_preserves_report_contents(self, campaign, tmp_path):
        path = str(tmp_path / "campaign.json")
        save_campaign(campaign, path)
        loaded = load_campaign(path)
        for original, restored in zip(campaign.reports, loaded.reports):
            assert restored.case.sender == original.case.sender
            assert restored.case.receiver == original.case.receiver
            assert restored.interfered_indices == original.interfered_indices
            assert restored.culprit_pairs == original.culprit_pairs
            assert classify_all(restored) == classify_all(original)

    def test_reaggregation_matches(self, campaign, tmp_path):
        path = str(tmp_path / "campaign.json")
        save_campaign(campaign, path)
        loaded = load_campaign(path)
        assert loaded.groups.agg_r_count == campaign.groups.agg_r_count
        assert loaded.groups.agg_rs_count == campaign.groups.agg_rs_count
        for original, restored in zip(campaign.reports, loaded.reports):
            assert receiver_signature(restored) == receiver_signature(original)
            assert sender_signature(restored) == sender_signature(original)

    def test_reports_render_after_reload(self, campaign, tmp_path):
        path = str(tmp_path / "campaign.json")
        save_campaign(campaign, path)
        loaded = load_campaign(path)
        assert "functional interference report" in loaded.reports[0].render()

    def test_document_is_plain_json(self, campaign, tmp_path):
        path = str(tmp_path / "campaign.json")
        save_campaign(campaign, path)
        with open(path) as handle:
            data = json.load(handle)
        assert data["format_version"] == 1
        assert data["config"]["bugs_enabled"]

    def test_unknown_version_rejected(self, campaign):
        data = campaign_to_dict(campaign)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            campaign_from_dict(data)


class TestCoverage:
    @pytest.fixture(scope="class")
    def profiles(self):
        machine = Machine(MachineConfig(bugs=linux_5_13()))
        return Profiler(machine).profile_corpus(seed_list())

    def test_seed_corpus_covers_many_functions(self, profiles):
        report = coverage_of_profiles(profiles)
        assert len(report.functions) >= 30
        assert len(report.instructions) >= 60

    def test_shared_addresses_exist(self, profiles):
        report = coverage_of_profiles(profiles)
        assert report.shared_addresses

    def test_subsystem_rollup_names_net(self, profiles):
        report = coverage_of_profiles(profiles)
        names = dict(report.subsystem_summary())
        assert any(name.startswith("net/") for name in names)

    def test_function_names_resolve(self, profiles):
        report = coverage_of_profiles(profiles)
        assert any("socket_create" in name for name in report.function_names)

    def test_render_is_textual(self, profiles):
        text = coverage_of_profiles(profiles).render()
        assert "functions entered" in text
        assert "per-subsystem" in text

    def test_merge_is_union(self, profiles):
        first = coverage_of_profiles(profiles[:5])
        second = coverage_of_profiles(profiles[5:])
        merged = first.merge(second)
        full = coverage_of_profiles(profiles)
        assert merged.functions == full.functions
        assert merged.instructions == full.instructions

    def test_single_program_coverage_is_subset(self, profiles):
        one = coverage_of_profiles(profiles[:1])
        full = coverage_of_profiles(profiles)
        assert one.instructions <= full.instructions

    def test_empty_profiles(self):
        report = coverage_of_profiles([])
        assert not report.functions and not report.shared_addresses
