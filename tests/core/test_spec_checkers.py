"""Each specification checker function, positive and negative."""

from __future__ import annotations

import pytest

from repro.core.spec import (
    DEFAULT_CHECKERS,
    check_dirents,
    check_hostname,
    check_ipvs,
    check_mount_table,
    check_netdev,
    check_path_ops,
    check_pid,
    check_priority,
    check_unix_diag,
    check_unshare,
    default_specification,
)
from repro.vm.executor import SyscallRecord


def record(name, **kwargs):
    return SyscallRecord(index=0, name=name, args=(), retval=0, errno=0,
                         **kwargs)


@pytest.mark.parametrize("checker,positives", [
    (check_priority, ["getpriority", "setpriority"]),
    (check_pid, ["getpid"]),
    (check_hostname, ["gethostname", "sethostname"]),
    (check_mount_table, ["mount", "umount2"]),
    (check_path_ops, ["stat", "mkdir", "unlink", "open"]),
    (check_dirents, ["getdents64", "io_uring_getdents"]),
    (check_netdev, ["ip_link_add"]),
    (check_ipvs, ["ipvs_add_service"]),
    (check_unix_diag, ["unix_diag"]),
    (check_unshare, ["unshare"]),
])
def test_checker_selects_its_syscalls(checker, positives):
    for name in positives:
        assert checker(record(name)), name
    # Each checker matches nothing else.
    assert not checker(record("getuid"))
    assert not checker(record("close"))


def test_every_checker_is_registered():
    assert set(DEFAULT_CHECKERS) == {
        check_priority, check_pid, check_hostname, check_mount_table,
        check_path_ops, check_dirents, check_netdev, check_ipvs,
        check_unix_diag, check_unshare,
    }


def test_checkers_are_disjoint():
    """No syscall name trips two checkers — entries stay attributable."""
    names = ["getpriority", "setpriority", "getpid", "gethostname",
             "sethostname", "mount", "umount2", "stat", "mkdir", "unlink",
             "open", "getdents64", "io_uring_getdents", "ip_link_add",
             "ipvs_add_service", "unix_diag", "unshare"]
    for name in names:
        hits = [c.__name__ for c in DEFAULT_CHECKERS if c(record(name))]
        assert len(hits) == 1, (name, hits)


def test_spec_combines_kinds_and_checkers():
    spec = default_specification()
    # Checker-selected, no resource kinds at all.
    assert spec.call_accesses_protected(record("getpid"))
    # Kind-selected: a protected descriptor argument.
    assert spec.call_accesses_protected(
        record("pread64", arg_kinds={"fd": "fd_proc_net"}))
    # Unprotected kind, unmatched name.
    assert not spec.call_accesses_protected(
        record("pread64", arg_kinds={"fd": "fd_proc"}))
    assert not spec.call_accesses_protected(record("getuid"))


def test_matching_entries_name_the_evidence():
    spec = default_specification()
    entries = spec.matching_entries(
        record("open", ret_kind="fd_proc_net"))
    assert "fd_proc_net" in entries
    assert "check_path_ops" in entries
