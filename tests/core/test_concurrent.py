"""Tests for the concurrency functional interference extension (§7)."""

import pytest

from repro.core.concurrent import (
    ConcurrentDetector,
    default_schedules,
    round_robin_schedule,
    sequential_schedule,
)
from repro.core.detection import Detector, Outcome
from repro.core.generation import TestCase
from repro.core.spec import default_specification
from repro.corpus.program import prog
from repro.corpus.seeds import seed_programs
from repro.kernel import fixed_kernel, linux_5_13
from repro.vm import Machine, MachineConfig

#: A sender whose interference is fully transient: the socket (and its
#: global accounting) is gone before the program ends.
TRANSIENT_SENDER = prog(("socket", 2, 1, 6), ("close", "r0"))

#: A receiver that samples the counters twice.
DOUBLE_PROBE = prog(("open", "/proc/net/sockstat", 0),
                    ("pread64", "r0", 512, 0),
                    ("pread64", "r0", 512, 0))


class TestSchedules:
    def test_sequential_shape(self):
        assert sequential_schedule(2, 3) == "SSRRR"

    def test_round_robin_alternates(self):
        assert round_robin_schedule(2, 2) == "SRSR"

    def test_round_robin_receiver_lead(self):
        assert round_robin_schedule(2, 3, receiver_leads=2) == "RRSRS"

    def test_round_robin_exhausts_both_sides(self):
        schedule = round_robin_schedule(5, 2)
        assert schedule.count("S") == 5 and schedule.count("R") == 2

    def test_default_set_contains_sequential(self):
        schedules = default_schedules(2, 3)
        assert schedules[0] == "SSRRR"
        assert len(set(schedules)) == len(schedules)

    def test_default_set_covers_all_leads(self):
        schedules = default_schedules(1, 3)
        assert "RRRS" not in schedules  # lead == receiver_calls is capped
        assert any(s.startswith("R") for s in schedules)


class TestConcurrentDetector:
    def test_transient_interference_missed_sequentially(self):
        machine = Machine(MachineConfig(bugs=linux_5_13()))
        detector = Detector(machine, default_specification())
        result = detector.check_case(
            TestCase(0, 1, TRANSIENT_SENDER, DOUBLE_PROBE))
        assert result.outcome is Outcome.PASS

    def test_transient_interference_caught_interleaved(self):
        machine = Machine(MachineConfig(bugs=linux_5_13()))
        detector = ConcurrentDetector(machine, default_specification())
        report = detector.check_case(TRANSIENT_SENDER, DOUBLE_PROBE)
        assert report is not None
        assert report.transient_only
        # Interleaved witnesses only: the sender socket must be alive
        # when the receiver samples.
        for schedule in report.schedules:
            assert schedule != sequential_schedule(2, 3)

    def test_persistent_interference_witnessed_sequentially_too(self):
        machine = Machine(MachineConfig(bugs=linux_5_13()))
        detector = ConcurrentDetector(machine, default_specification())
        seeds = seed_programs()
        report = detector.check_case(seeds["packet_socket"],
                                     seeds["read_ptype"])
        assert report is not None
        assert not report.transient_only

    def test_fixed_kernel_reports_nothing(self):
        machine = Machine(MachineConfig(bugs=fixed_kernel()))
        detector = ConcurrentDetector(machine, default_specification())
        assert detector.check_case(TRANSIENT_SENDER, DOUBLE_PROBE) is None

    def test_nondet_filter_applies_per_schedule(self):
        """A time-sensitive receiver must not produce schedule noise."""
        machine = Machine(MachineConfig(bugs=fixed_kernel()))
        detector = ConcurrentDetector(machine, default_specification())
        noisy = prog(("open", "/proc/uptime", 0), ("pread64", "r0", 128, 0))
        assert detector.check_case(seed_programs()["get_hostname"],
                                   noisy) is None

    def test_schedule_validation(self):
        machine = Machine(MachineConfig(bugs=linux_5_13()))
        detector = ConcurrentDetector(machine, default_specification())
        with pytest.raises(ValueError):
            detector.check_case(TRANSIENT_SENDER, DOUBLE_PROBE,
                                schedules=["SSRR"])  # wrong R count
        with pytest.raises(ValueError):
            detector.check_case(TRANSIENT_SENDER, DOUBLE_PROBE,
                                schedules=["SSXRR" + "R"])

    def test_custom_schedule_subset(self):
        machine = Machine(MachineConfig(bugs=linux_5_13()))
        detector = ConcurrentDetector(machine, default_specification())
        report = detector.check_case(TRANSIENT_SENDER, DOUBLE_PROBE,
                                     schedules=["RSRSR"])
        assert report is not None and report.schedules == ["RSRSR"]

    def test_schedule_accounting(self):
        machine = Machine(MachineConfig(bugs=linux_5_13()))
        detector = ConcurrentDetector(machine, default_specification())
        detector.check_case(TRANSIENT_SENDER, DOUBLE_PROBE,
                            schedules=["SSRRR", "RSRSR"])
        assert detector.schedules_executed == 2

    def test_deterministic_witnesses(self):
        machine = Machine(MachineConfig(bugs=linux_5_13()))
        detector = ConcurrentDetector(machine, default_specification())
        first = detector.check_case(TRANSIENT_SENDER, DOUBLE_PROBE)
        second = detector.check_case(TRANSIENT_SENDER, DOUBLE_PROBE)
        assert first.witnesses == second.witnesses
