"""Sender-state memoization property: cached-restore ≡ re-execution.

The load-bearing property of the SenderStateCache: serving a test case
by restoring *base snapshot + memoized post-sender delta* must be
indistinguishable from re-executing the sender from the snapshot —
byte-identical receiver traces, byte-identical machine state, identical
bug sets and culprit pairs — for every seed program, every Table-3
kernel, and under chaos fault seeds.
"""

from __future__ import annotations

import pytest

from repro.core import CampaignConfig, Kit
from repro.core.decode import decode_trace
from repro.core.diagnosis import PREFIX_CHECKPOINT_STRIDE
from repro.core.execution import SenderStateCache, TestCaseRunner
from repro.core.known_bugs import SCENARIOS, TABLE3_ROWS, scenario_machine_config
from repro.corpus.seeds import seed_programs
from repro.faults.plan import FaultPlan
from repro.kernel import linux_5_13
from repro.vm import Machine, MachineConfig, state_fingerprint

CONFIGS = {"5.13": MachineConfig(bugs=linux_5_13())}
CONFIGS.update({row: scenario_machine_config(SCENARIOS[row])
                for row in TABLE3_ROWS})

#: Chaos seeds for the faulted half of the property (acceptance: >= 2).
CHAOS_SEEDS = (5, 9)


def _campaign(config_name, cache=True, faults=None, workers=0):
    return Kit(CampaignConfig(
        machine=CONFIGS[config_name],
        corpus_size=16, max_test_cases=16, workers=workers,
        sender_cache=cache, faults=faults)).run()


def _assert_reports_identical(cached, uncached):
    assert sorted(cached.bugs_found()) == sorted(uncached.bugs_found())
    assert len(cached.reports) == len(uncached.reports)
    for a, b in zip(cached.reports, uncached.reports):
        assert decode_trace(a.receiver_with_records) \
            == decode_trace(b.receiver_with_records)
        assert decode_trace(a.receiver_alone_records) \
            == decode_trace(b.receiver_alone_records)
        assert decode_trace(a.sender_records) == decode_trace(b.sender_records)
        assert a.interfered_indices == b.interfered_indices
        assert a.culprit_pairs == b.culprit_pairs


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_cached_restore_equals_sender_reexecution(config_name):
    """Property: for every seed program pair, a run served from the
    memoized post-sender delta is byte-identical — traces *and* final
    machine state — to one that re-executed the sender."""
    config = CONFIGS[config_name]
    cached_machine = Machine(config)
    uncached_machine = Machine(config)
    cache = SenderStateCache()
    cached = TestCaseRunner(cached_machine, sender_states=cache)
    uncached = TestCaseRunner(uncached_machine)

    seeds = sorted(seed_programs().items())
    receivers = [program for _, program in seeds[:2]]
    for name, sender in seeds:
        # Two receivers per sender: the first run populates the cache,
        # the second is served from the memoized delta.
        for receiver in receivers:
            sent_c, recv_c = cached.run_with_sender(sender, receiver)
            sent_u, recv_u = uncached.run_with_sender(sender, receiver)
            context = f"sender {name!r} on {config_name}"
            assert decode_trace(recv_c.records) \
                == decode_trace(recv_u.records), context
            assert decode_trace(sent_c.records) \
                == decode_trace(sent_u.records), context
            assert state_fingerprint(cached_machine.kernel) \
                == state_fingerprint(uncached_machine.kernel), context
    # Every sender's second case must have hit the cache.
    assert cache.hits >= len(seeds)
    assert len(cache) == len(seeds)
    assert cache.bytes_held > 0


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_campaign_equivalence(config_name):
    """Property: cache-enabled campaigns report byte-identical traces,
    bug sets, and culprits to cache-disabled ones, on every kernel."""
    cached = _campaign(config_name, cache=True)
    uncached = _campaign(config_name, cache=False)
    _assert_reports_identical(cached, uncached)
    # The disabled run must not touch the cache at all.
    assert uncached.stats.sender_cache_hits == 0
    assert uncached.stats.sender_cache_misses == 0
    assert uncached.stats.diagnosis_prefix_reuses == 0
    if cached.stats.cases_executed:
        assert cached.stats.sender_cache_misses > 0
    if cached.reports and cached.stats.diagnosis_reruns:
        # Algorithm 2's re-runs are all prefix replays by construction.
        assert cached.stats.diagnosis_prefix_reuses \
            == cached.stats.diagnosis_reruns


def test_long_sender_diagnosis_uses_checkpoint_replay():
    """Senders longer than the checkpoint stride make Algorithm 2 serve
    most variants by restoring the nearest strided checkpoint and
    replaying the few slots past it — reports must stay identical to
    the cache-disabled campaign's."""
    programs = [program for _, program in sorted(seed_programs().items())]

    def wide(start):
        sender = programs[start % len(programs)]
        for step in range(1, 8):
            sender = sender.concatenate(
                programs[(start + step) % len(programs)])
        return sender

    corpus = [wide(start) for start in range(8)]
    assert max(len(program.live_call_indices()) for program in corpus) \
        > PREFIX_CHECKPOINT_STRIDE
    config = dict(machine=CONFIGS["5.13"], corpus=corpus)
    cached = Kit(CampaignConfig(sender_cache=True, **config)).run()
    uncached = Kit(CampaignConfig(sender_cache=False, **config)).run()
    _assert_reports_identical(cached, uncached)
    assert cached.stats.diagnosis_reruns > 0
    assert cached.stats.diagnosis_prefix_reuses \
        == cached.stats.diagnosis_reruns


def test_distributed_campaign_equivalence():
    """The cache is shared across cluster workers; results must still
    match the sequential cache-disabled reference exactly."""
    cached = _campaign("5.13", cache=True, workers=3)
    uncached = _campaign("5.13", cache=False)
    _assert_reports_identical(cached, uncached)
    total = cached.stats.sender_cache_hits + cached.stats.sender_cache_misses
    assert total > 0


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_campaign_equivalence_under_chaos(seed):
    """Under fault injection the cached campaign must still find exactly
    the clean bug set, with every injection accounted for."""
    reference = _campaign("5.13", cache=False)
    plan = FaultPlan(seed=seed, rate=0.15)
    chaotic = _campaign("5.13", cache=True, faults=plan, workers=2)
    assert sorted(chaotic.bugs_found()) == sorted(reference.bugs_found())
    assert chaotic.stats.faults_accounted(), plan.stats.snapshot()
    assert chaotic.stats.faults_injected_total() > 0
