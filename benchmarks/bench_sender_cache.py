"""Sender-state memoization: speedup vs receiver fan-out (§6.5).

A sender paired with F receivers executes once and is restored F-1
times from its memoized post-sender delta.  This bench measures the
test-case execution speedup and the cache's byte footprint at fan-out
1, 4, and 16, using deliberately expensive senders (several seed
programs concatenated) so the amortized work is visible.
"""

import time

from repro import MachineConfig, linux_5_13
from repro.core import SenderStateCache, TestCaseRunner
from repro.corpus import seed_programs
from repro.vm import Machine

from benchmarks.support import emit_table

FAN_OUTS = (1, 4, 16)
#: Seed programs concatenated per sender — an expensive sender, as the
#: affinity-batched campaign produces by grouping long generated chains.
SENDER_WIDTH = 6


def _expensive_senders(count):
    seeds = sorted(seed_programs().items())
    programs = [program for _, program in seeds]
    senders = []
    for start in range(count):
        sender = programs[start % len(programs)]
        for step in range(1, SENDER_WIDTH):
            sender = sender.concatenate(
                programs[(start + step) % len(programs)])
        senders.append(sender)
    return senders


def _receivers(count):
    programs = sorted(seed_programs().items())
    return [program for _, program in programs[:count]]


def _run_cases(runner, senders, receivers):
    start = time.perf_counter()
    for sender in senders:
        for receiver in receivers:
            runner.run_with_sender(sender, receiver)
    return time.perf_counter() - start


def measure_workload(senders, receivers, config, reps=5):
    """Best-of-*reps* uncached and cached wall times for one workload.

    Both arms are fully warmed first (interior address maps, lazy
    imports, allocator high-water marks), then timed *reps* times each;
    the cache is cleared before every cached rep so each one pays the
    miss-and-capture cost exactly once per sender.  Minimum-of-reps is
    the standard way to strip scheduler noise from millisecond loops.
    """
    uncached = TestCaseRunner(Machine(config))
    cache = SenderStateCache()
    cached = TestCaseRunner(Machine(config), sender_states=cache)
    for sender in senders:
        for receiver in receivers:
            uncached.run_with_sender(sender, receiver)
            cached.run_with_sender(sender, receiver)
    best_uncached = best_cached = float("inf")
    for _ in range(reps):
        best_uncached = min(best_uncached,
                            _run_cases(uncached, senders, receivers))
        cache.clear()
        best_cached = min(best_cached,
                          _run_cases(cached, senders, receivers))
    return best_uncached, best_cached, cache


def test_bench_sender_cache_fan_out(benchmark):
    senders = _expensive_senders(4)
    config = MachineConfig(bugs=linux_5_13())

    rows = []
    for fan_out in FAN_OUTS:
        receivers = _receivers(fan_out)
        uncached_s, cached_s, cache = measure_workload(
            senders, receivers, config)
        rows.append((fan_out, uncached_s, cached_s,
                     uncached_s / cached_s, cache.bytes_held, len(cache)))

    # Benchmark the steady-state unit of work: one cached restore+run.
    cache = SenderStateCache()
    runner = TestCaseRunner(Machine(config), sender_states=cache)
    receiver = _receivers(1)[0]
    runner.run_with_sender(senders[0], receiver)
    benchmark(runner.run_with_sender, senders[0], receiver)

    lines = [f"{'fan-out':>7} {'uncached s':>11} {'cached s':>9} "
             f"{'speedup':>8} {'deltas':>7} {'bytes held':>11}",
             "-" * 58]
    for fan_out, uncached_s, cached_s, speedup, held, entries in rows:
        lines.append(f"{fan_out:>7} {uncached_s:>11.3f} {cached_s:>9.3f} "
                     f"{f'{speedup:.1f}x':>8} {entries:>7} {held:>11}")
    lines.append("")
    lines.append(f"senders: {len(senders)} x {SENDER_WIDTH} concatenated "
                 f"seed programs; cache capacity is never the constraint "
                 f"here (no evictions)")
    emit_table("sender_cache_fan_out",
               "Sender-state cache speedup vs receiver fan-out", lines)

    by_fan_out = {row[0]: row for row in rows}
    # At fan-out 1 there is nothing to amortize: every case is a miss.
    assert by_fan_out[1][3] < 1.5, "fan-out 1 should show no speedup"
    # Speedup must grow with fan-out and pay off clearly at 4+.
    assert by_fan_out[4][3] > by_fan_out[1][3]
    assert by_fan_out[16][3] > by_fan_out[4][3]
    # The footprint is one delta per sender, independent of fan-out.
    assert all(entries == len(senders) for *_, entries in rows)
