"""Table 2: the nine functional interference bugs found in Linux 5.13.

Regenerates the table from a full DF-IA campaign against the simulated
5.13 kernel: every row must be witnessed by at least one report whose
oracle label matches.  The benchmark times the per-test-case detection
check (two-execution run + AST comparison + filters) on the bug-#1 case,
the paper's flagship finding.
"""

from repro import MachineConfig, linux_5_13
from repro.core import Detector, TestCase, default_specification
from repro.core.oracle import classify_all
from repro.corpus import seed_programs
from repro.kernel.bugs import TABLE2_BUGS
from repro.vm import Machine

from benchmarks.support import emit_table

#: Paper row -> (sender action, receiver action) — for the table text.
_ACTIONS = {
    1: ("Create a packet socket", "Read /proc/net/ptype"),
    2: ("Create an exclusive flow label", "Transmit with unregistered label"),
    3: ("Bind an RDS socket", "Bind an RDS socket"),
    4: ("Create an exclusive flow label", "Connect with unregistered label"),
    5: ("Create a TCP socket", "Read /proc/net/sockstat"),
    6: ("Generate a socket cookie", "Generate a socket cookie"),
    7: ("Request an association ID", "Request an association ID"),
    8: ("Allocate protocol memory", "Read /proc/net/sockstat"),
    9: ("Allocate protocol memory", "Read /proc/net/protocols"),
}


def test_table2_bug_discovery(campaign_513, benchmark):
    # Benchmark the detection check for the flagship bug-#1 test case.
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    detector = Detector(machine, default_specification())
    seeds = seed_programs()
    case = TestCase(0, 1, seeds["packet_socket"], seeds["read_ptype"])
    detector.check_case(case)  # warm the baseline / non-det caches
    result = benchmark(detector.check_case, case)
    assert result.report is not None

    # Regenerate Table 2 from the campaign.
    label_reports = {}
    for report in campaign_513.reports:
        for label in classify_all(report):
            label_reports.setdefault(label, []).append(report)

    lines = [f"{'ID':<3} {'Sender action':<34} {'Receiver action':<34} "
             f"{'Resource':<18} {'Reports':>7}",
             "-" * 100]
    for bug_id in range(1, 10):
        __, ___, resource = TABLE2_BUGS[bug_id]
        sender_action, receiver_action = _ACTIONS[bug_id]
        count = len(label_reports.get(str(bug_id), []))
        assert count > 0, f"bug #{bug_id} not found by the campaign"
        lines.append(f"{bug_id:<3} {sender_action:<34} {receiver_action:<34} "
                     f"{resource:<18} {count:>7}")
    lines.append("")
    lines.append(f"paper: 9 bugs found in Linux 5.13 — reproduced: "
                 f"{sum(1 for b in range(1, 10) if label_reports.get(str(b)))}/9")
    emit_table("table2", "Table 2: namespace functional interference bugs "
                         "found by KIT", lines)
