"""Schedule-budget sweep over the race-only bugs (T1-T3).

Counts how many of the injected race bugs each scheduling strategy
exposes as its schedule budget grows — PCT at depths 1-3 against
systematic enumeration and per-event coin flips, plus the two controls
(syscall-granularity preemption and the sequential harness, which is
structurally blind to all three).  The gate freezes the headline claim:
at the default configuration (PCT, depth 3, budget 24, kfunc points)
every race bug is found, and the sequential run finds none.
"""

from __future__ import annotations

from repro.core.race_scenarios import reproduce_races
from repro.core.schedule import (
    GRANULARITY_SYSCALL,
    STRATEGY_PCT,
    STRATEGY_RANDOM,
    STRATEGY_SYSTEMATIC,
)

from benchmarks.support import emit_table

#: Budgets swept per strategy row.
BUDGETS = (4, 8, 16, 24, 48)
#: The default configuration the gate enforces 3/3 at.
DEFAULT_BUDGET = 24
RACE_IDS = ("T1", "T2", "T3")


def _row_configs():
    yield "pct d=1", dict(schedule_strategy=STRATEGY_PCT, schedule_depth=1)
    yield "pct d=2", dict(schedule_strategy=STRATEGY_PCT, schedule_depth=2)
    yield "pct d=3", dict(schedule_strategy=STRATEGY_PCT, schedule_depth=3)
    yield "sys d=3", dict(schedule_strategy=STRATEGY_SYSTEMATIC,
                          schedule_depth=3)
    yield "rand d=3", dict(schedule_strategy=STRATEGY_RANDOM,
                           schedule_depth=3)


def test_schedule_budget_sweep(benchmark):
    found = {}
    schedules = {}
    for label, knobs in _row_configs():
        for budget in BUDGETS:
            result = reproduce_races(schedule_budget=budget, **knobs)
            found[label, budget] = sorted(result.bugs_found())
            schedules[label, budget] = result.stats.schedules_executed

    syscall_run = reproduce_races(schedule_points=GRANULARITY_SYSCALL,
                                  schedule_budget=DEFAULT_BUDGET)
    sequential = reproduce_races(interleave=False)
    benchmark.pedantic(reproduce_races, rounds=1, iterations=1)

    header = f"{'strategy':<12}" + "".join(f"{f'b={b}':>8}" for b in BUDGETS)
    lines = [header, "-" * len(header)]
    for label, _ in _row_configs():
        cells = "".join(f"{f'{len(found[label, b])}/3':>8}" for b in BUDGETS)
        lines.append(f"{label:<12}{cells}")
    lines.append("")
    lines.append(f"syscall-granularity control (b={DEFAULT_BUDGET}): "
                 f"{len(syscall_run.bugs_found())}/3 — the windows open "
                 "and close inside one syscall, so syscall-boundary "
                 "preemption cannot land in them")
    lines.append(f"sequential control: {len(sequential.bugs_found())}/3 "
                 "(two-phase harness, structurally blind)")
    default = found["pct d=3", DEFAULT_BUDGET]
    lines.append("")
    lines.append(f"gate invariant: default config (pct d=3, "
                 f"b={DEFAULT_BUDGET}, kfunc points) finds "
                 f"{len(default)}/3 race bugs in "
                 f"{schedules['pct d=3', DEFAULT_BUDGET]} interleavings; "
                 "sequential finds 0/3")
    emit_table("schedule_gate", "Race-bug discovery vs schedule budget",
               lines)

    assert default == list(RACE_IDS), \
        f"default schedule budget missed race bugs: found {default}"
    assert sequential.bugs_found() == set(), \
        "the sequential harness must stay blind to the race-only bugs"
    assert sequential.reports == []
    for label, _ in _row_configs():
        counts = [len(found[label, budget]) for budget in BUDGETS]
        assert counts == sorted(counts), \
            f"{label}: more budget lost bugs ({counts})"
