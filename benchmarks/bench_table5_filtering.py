"""Table 5: test report filtering effectiveness (§6.4).

Regenerates the filtering funnel from the main DF-IA campaign:

    tests executed -> initial candidate reports
                   -> after non-determinism filtering
                   -> after non-det + resource filtering

The shape target is the paper's: the two filters together remove the
large majority of candidates, and the non-determinism filter does most
of the work.  The benchmark times the non-determinism analysis of one
time-sensitive receiver program (three snapshot-restored re-runs with
rebased clocks).
"""

from repro import MachineConfig, linux_5_13
from repro.core import NondetAnalyzer, NondetStore
from repro.corpus import seed_programs
from repro.vm import Machine

from benchmarks.support import emit_table


def test_table5_report_filtering(campaign_513, benchmark):
    # Benchmark: non-det identification for one receiver program (cache
    # defeated each round by using a fresh store).
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    program = seed_programs()["read_uptime"]

    def analyze():
        analyzer = NondetAnalyzer(machine, store=NondetStore())
        return analyzer.nondet_paths(program)

    marks = benchmark(analyze)
    assert marks

    stats = campaign_513.stats
    initial = stats.initial_reports

    def pct(value):
        return f"{100.0 * value / initial:5.1f}%" if initial else "  n/a"

    lines = [f"{'':<38} {'Number':>8} {'Percentage':>11}",
             "-" * 60,
             f"{'Tests executed':<38} {stats.cases_total:>8}",
             f"{'Initial reports':<38} {initial:>8} {pct(initial):>11}",
             f"{'After non-det filtering':<38} {stats.after_nondet:>8} "
             f"{pct(stats.after_nondet):>11}",
             f"{'After non-det + resource filtering':<38} "
             f"{stats.after_resource:>8} {pct(stats.after_resource):>11}",
             "",
             "paper: 1,132,761 executed; 15,353 -> 891 (5.80%) -> 808 (5.26%)"]
    emit_table("table5", "Table 5: test report filtering effectiveness", lines)

    # Shape assertions: a strict funnel, with non-det doing real work.
    assert stats.cases_total >= initial
    assert initial >= stats.after_nondet >= stats.after_resource
    assert stats.after_resource == len(campaign_513.reports)
    assert stats.outcomes.get("nondet", 0) > 0, \
        "the non-determinism filter must absorb some candidates"
    # The resource filter removes few (often zero) candidates under DF
    # generation — §6.4 explains why: the generation gate guarantees the
    # receiver touches protected resources, so unprotected syscalls are
    # rarely exercised.  The filter's behaviour itself is covered by
    # unit tests (crypto-probe case in tests/core).
    assert stats.outcomes.get("resource", 0) >= 0
