"""Table 4: test case generation and clustering strategies (§6.3).

Profiles the benchmark corpus once, then evaluates every strategy the
paper compares:

* DF-IA / DF-ST-1 / DF-ST-2 — cluster counts must grow in that order and
  each must discover all nine injected bugs after exercising its
  clusters.
* DF — the unclustered flow count (reported, not executed, like the
  paper's 234M row).
* RAND — random pairing with ~8x DF-IA's execution budget (the paper's
  RAND row ran 7.7x DF-IA's case count) must find strictly fewer bugs.

The benchmark times the clustering stage itself (DF-IA over the full
profiled corpus), which §6.5 bounds at "30 minutes on one machine" for
the real corpus.

A DF-IA+SF row runs DF-IA behind the static candidate-pair pre-filter
(docs/ANALYSIS.md): it must prune at least 20% of the candidate pairs
while leaving the detected-bug set untouched.
"""

from repro import MachineConfig, linux_5_13
from repro.core import (
    Detector,
    Profiler,
    TestCaseGenerator,
    default_specification,
    strategy_by_name,
)
from repro.core.oracle import classify_all
from repro.vm import Machine

from benchmarks.support import emit_table

_NUMBERED = set("123456789")


def _bugs_found(detector, cases):
    found = set()
    for case in cases:
        result = detector.check_case(case)
        if result.report is not None:
            found |= classify_all(result.report) & _NUMBERED
    return found


def test_table4_generation_strategies(bench_corpus, benchmark):
    spec = default_specification()
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    profiles = Profiler(machine).profile_corpus(bench_corpus)
    generator = TestCaseGenerator(bench_corpus, profiles, spec)

    # Benchmark: the DF-IA clustering pass over the profiled corpus.
    generation = benchmark(generator.generate, strategy_by_name("df-ia"))

    rows = []
    df_ia_cases = None
    for name in ("df-ia", "df-st-1", "df-st-2"):
        result = generator.generate(strategy_by_name(name))
        detector = Detector(Machine(MachineConfig(bugs=linux_5_13())), spec)
        found = _bugs_found(detector, result.test_cases)
        rows.append((name.upper(), result.cluster_count, found))
        if name == "df-ia":
            df_ia_cases = len(result.test_cases)

    rand_budget = 8 * df_ia_cases
    rand_result = generator.generate_random(rand_budget, seed=7)
    rand_detector = Detector(Machine(MachineConfig(bugs=linux_5_13())), spec)
    rand_found = _bugs_found(rand_detector, rand_result.test_cases)
    rows.append(("RAND", rand_budget, rand_found))
    rows.append(("DF", generation.flow_count, None))

    # DF-IA again, behind the static candidate-pair pre-filter.
    from repro.analysis.prefilter import StaticPreFilter
    filtered_gen = TestCaseGenerator(
        bench_corpus, profiles, spec,
        prefilter=StaticPreFilter(bugs=linux_5_13()))
    filtered = filtered_gen.generate(strategy_by_name("df-ia"))
    sf_detector = Detector(Machine(MachineConfig(bugs=linux_5_13())), spec)
    sf_found = _bugs_found(sf_detector, filtered.test_cases)
    rows.append(("DF-IA+SF", filtered.cluster_count, sf_found))
    sf_stats = filtered.prefilter

    lines = [f"{'Gen':<9} {'Test cases':>11} {'Effectiveness':>14}",
             "-" * 38]
    for name, count, found in rows:
        effectiveness = f"{len(found)}/9" if found is not None else "(not run)"
        lines.append(f"{name:<9} {count:>11} {effectiveness:>14}")
    lines.append("")
    lines.append(f"static pre-filter: {sf_stats.pairs_pruned}/"
                 f"{sf_stats.pairs_total} candidate pairs pruned "
                 f"({sf_stats.pruned_rate():.0%})")
    lines.append("paper: DF-IA 1.13M / DF-ST-1 3.32M / DF-ST-2 6.61M / "
                 "RAND 8.66M / DF 234.63M; DF-* 9/9, RAND 5/9")
    emit_table("table4", "Table 4: generation & clustering strategies", lines)

    # Shape assertions (the reproduction target).
    counts = [count for __, count, found in rows[:3]]
    assert counts == sorted(counts), "DF-IA <= DF-ST-1 <= DF-ST-2"
    assert generation.flow_count >= counts[-1], "DF dwarfs clustered counts"
    for name, __, found in rows[:3]:
        assert found == _NUMBERED, f"{name} must find all nine bugs"
    assert rand_found < _NUMBERED, "RAND must find a strict subset"
    # The static pre-filter gate: >=20% pruned, detected-bug set intact.
    assert sf_stats.pruned_rate() >= 0.2, \
        f"pre-filter pruned only {sf_stats.pruned_rate():.0%}"
    assert sf_found == _NUMBERED, \
        "the static pre-filter must not lose any bug"
