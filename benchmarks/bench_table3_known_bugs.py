"""Table 3: known Linux namespace bugs reproduced by functional
interference testing.

Runs every historical-bug scenario (one kernel preset per row) plus the
two §6.2 out-of-reach cases, and regenerates the table.  The expected
outcome matches the paper: 5 of the 7 scenarios detected, with F masked
by non-determinism and G unreachable without runtime resource IDs.

The benchmark times one complete scenario campaign (bug A), i.e. the
cost of a targeted regression check against one historical kernel.
"""

from repro.core.known_bugs import SCENARIOS, TABLE3_ROWS, reproduce_known_bug

from benchmarks.support import emit_table


def test_table3_known_bug_reproduction(benchmark):
    outcome_a = benchmark.pedantic(reproduce_known_bug, args=("A",),
                                   rounds=3, iterations=1)
    assert outcome_a.detected

    lines = [f"{'ID':<3} {'Kernel':<7} {'NS':<5} {'Detected':<9} "
             f"{'Expected':<9} Scenario",
             "-" * 96]
    detected_rows = 0
    for bug_id, scenario in SCENARIOS.items():
        outcome = reproduce_known_bug(bug_id)
        expected = "yes" if scenario.detectable else "no"
        actual = "yes" if outcome.detected else "no"
        assert actual == expected, bug_id
        if bug_id in TABLE3_ROWS and outcome.detected:
            detected_rows += 1
        lines.append(f"{bug_id:<3} {outcome.kernel_version:<7} "
                     f"{outcome.namespace:<5} {actual:<9} {expected:<9} "
                     f"{scenario.description}")
    lines.append("")
    lines.append(f"paper: 5/7 known bugs reproduced — here: "
                 f"{detected_rows}/5 Table-3 rows detected, F and G "
                 "correctly out of reach")
    emit_table("table3", "Table 3: known namespace bugs reproduced", lines)
