"""Table 6: test report aggregation results (§6.4).

Regenerates the per-bug breakdown from the main campaign: filtered
reports, AGG-RS groups, and AGG-R groups for each Table-2 bug plus the
FP (false positive) and UI (under investigation) columns.  The shape
target: group counts are far below raw report counts, and most bugs
collapse into a couple of groups each.

The benchmark times the aggregation pass itself over the campaign's
full report set.
"""

from repro.core import aggregate
from repro.core.aggregation import receiver_signature, sender_signature
from repro.core.oracle import FALSE_POSITIVE, UNDER_INVESTIGATION, classify_all

from benchmarks.support import emit_table

_COLUMNS = [str(bug) for bug in range(1, 10)] + [FALSE_POSITIVE,
                                                 UNDER_INVESTIGATION]


def test_table6_report_aggregation(campaign_513, benchmark):
    reports = campaign_513.reports
    groups = benchmark(aggregate, reports)

    # Label every report (a report may witness several bugs).
    labels_of = {id(report): classify_all(report) for report in reports}

    def label_count(label, items):
        return sum(1 for r in items if label in labels_of[id(r)])

    lines = [f"{'':<18}" + "".join(f"{c:>6}" for c in _COLUMNS) + f"{'Total':>8}",
             "-" * 92]

    row = [label_count(label, reports) for label in _COLUMNS]
    lines.append(f"{'Filtered reports':<18}"
                 + "".join(f"{v:>6}" for v in row) + f"{len(reports):>8}")

    agg_rs_row = [
        sum(1 for members in groups.agg_rs.values()
            if label_count(label, members))
        for label in _COLUMNS
    ]
    lines.append(f"{'AGG-RS groups':<18}"
                 + "".join(f"{v:>6}" for v in agg_rs_row)
                 + f"{groups.agg_rs_count:>8}")

    agg_r_row = [
        sum(1 for members in groups.agg_r.values()
            if label_count(label, members))
        for label in _COLUMNS
    ]
    lines.append(f"{'AGG-R groups':<18}"
                 + "".join(f"{v:>6}" for v in agg_r_row)
                 + f"{groups.agg_r_count:>8}")

    lines.append("")
    lines.append("paper totals: 808 reports -> 71 AGG-RS -> 32 AGG-R "
                 "(FP: 19 AGG-RS / 4 AGG-R)")
    emit_table("table6", "Table 6: test report aggregation results", lines)

    # Shape assertions.
    assert groups.agg_r_count <= groups.agg_rs_count <= len(reports)
    for bug in map(str, range(1, 10)):
        assert label_count(bug, reports) > 0, f"bug {bug} missing"
    # Aggregation must actually compress: strictly fewer groups than
    # reports (the paper's 808 -> 71 -> 32 funnel).
    assert groups.agg_rs_count < len(reports)

    # Every group's members agree on the receiver signature by construction.
    for (receiver_sig, sender_sig), members in groups.agg_rs.items():
        for member in members:
            assert receiver_signature(member) == receiver_sig
            assert sender_signature(member) == sender_sig
