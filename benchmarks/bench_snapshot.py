"""Snapshot restore: full deserialization vs segmented in-place (§6.5).

The paper's testbed restores a QEMU VM snapshot before every execution;
this simulator's equivalent — unpickling the whole kernel — dominated
test-case cost in the same way.  The segmented engine
(:mod:`repro.vm.segments`) restores only the state a run actually
dirtied, so the comparison here is the direct measure of the tentpole
optimisation: mean reset latency and reset+run latency under both
restore modes, plus the consistency cross-check that the fast path is
byte-identical to the slow one.
"""

import time

from repro import MachineConfig, linux_5_13
from repro.corpus import seed_programs
from repro.vm import Machine, state_fingerprint
from repro.vm.machine import RECEIVER, SENDER

from benchmarks.support import emit_table

RESET_RUNS = 200
CASE_RUNS = 100


def _mean_seconds(action, runs):
    start = time.perf_counter()
    for _ in range(runs):
        action()
    return (time.perf_counter() - start) / runs


def _case(machine, sender, receiver):
    machine.reset()
    machine.run(SENDER, sender)
    machine.run(RECEIVER, receiver)


def test_bench_snapshot_restore_modes(benchmark):
    seeds = seed_programs()
    sender, receiver = seeds["udp_send"], seeds["read_sockstat"]

    full = Machine(MachineConfig(bugs=linux_5_13(), full_restore=True))
    seg = Machine(MachineConfig(bugs=linux_5_13()))

    # Dirty both machines once so neither measures a no-op first reset.
    _case(full, sender, receiver)
    _case(seg, sender, receiver)

    full_reset = _mean_seconds(full.reset, RESET_RUNS)
    seg_reset = _mean_seconds(seg.reset, RESET_RUNS)
    full_case = _mean_seconds(lambda: _case(full, sender, receiver), CASE_RUNS)
    seg_case = _mean_seconds(lambda: _case(seg, sender, receiver), CASE_RUNS)
    benchmark(seg.reset)

    reset_speedup = full_reset / seg_reset
    case_speedup = full_case / seg_case
    stats = seg.stats
    skip_rate = (stats.segments_skipped /
                 (stats.segments_restored + stats.segments_skipped))
    lines = [
        f"{'Metric':<38} {'full':>12} {'segmented':>12}",
        "-" * 66,
        f"{'Reset latency (ms)':<38} {full_reset * 1e3:>12.3f} "
        f"{seg_reset * 1e3:>12.3f}",
        f"{'Reset+test-case latency (ms)':<38} {full_case * 1e3:>12.3f} "
        f"{seg_case * 1e3:>12.3f}",
        f"{'Reset speedup':<38} {'1.0x':>12} {f'{reset_speedup:.1f}x':>12}",
        f"{'Test-case speedup':<38} {'1.0x':>12} {f'{case_speedup:.1f}x':>12}",
        f"{'Snapshot segments':<38} {'—':>12} "
        f"{seg.snapshot.segment_count:>12}",
        f"{'Segments skipped per reset':<38} {'0%':>12} "
        f"{f'{skip_rate:.0%}':>12}",
    ]
    emit_table("bench_snapshot", "Snapshot restore: full vs segmented", lines)

    # The acceptance threshold of this PR: segmented restore must be at
    # least twice as fast as full deserialization.
    assert reset_speedup >= 2.0, \
        f"segmented restore only {reset_speedup:.2f}x faster than full"
    assert seg_case < full_case, "test cases must get faster, not slower"

    # Consistency: after a dirty run, a segmented reset must land on
    # exactly the state a full restore produces.
    _case(seg, sender, receiver)
    seg.reset()
    assert state_fingerprint(seg.kernel) == \
        state_fingerprint(full.snapshot.restore())


def test_bench_segmented_verify_overhead(benchmark):
    """The opt-in cross-verification path stays usable (and correct)."""
    seeds = seed_programs()
    machine = Machine(MachineConfig(bugs=linux_5_13(), verify_restore=True))
    _case(machine, seeds["udp_send"], seeds["read_sockstat"])
    benchmark(machine.reset)  # raises RestoreConsistencyError on divergence
    assert machine.stats.segmented_restores > 0
