"""Shared fixtures for the benchmark harness.

Each ``bench_table*.py`` regenerates one table of the paper's evaluation
(§6) and benchmarks the pipeline stage behind it.  Campaign results are
computed once per session and shared; every bench both prints its table
and writes it under ``benchmarks/results/`` so the numbers survive the
pytest output capture.
"""

from __future__ import annotations

import pytest

from repro import CampaignConfig, Kit, MachineConfig, linux_5_13
from repro.corpus import build_corpus

from benchmarks.support import BENCH_CORPUS_SIZE


def pytest_addoption(parser):
    parser.addoption(
        "--chaos", action="store_true", default=False,
        help="sweep extra fault seeds in the chaos smoke gate")


@pytest.fixture(scope="session")
def chaos_seeds(request):
    """One seed for the smoke gate; eight under ``--chaos``."""
    if request.config.getoption("--chaos"):
        return list(range(8))
    return [3]


@pytest.fixture(scope="session")
def bench_corpus():
    return build_corpus(BENCH_CORPUS_SIZE, seed=1)


@pytest.fixture(scope="session")
def campaign_513(bench_corpus):
    """The main DF-IA campaign against simulated Linux 5.13 (Tables 2/5/6)."""
    config = CampaignConfig(
        machine=MachineConfig(bugs=linux_5_13()),
        corpus=list(bench_corpus),
        strategy="df-ia",
    )
    return Kit(config).run()
