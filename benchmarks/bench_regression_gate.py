"""Regression gating across kernel builds — the downstream workflow.

Not a paper table, but the deployment the artifact enables: run one
campaign per kernel build and diff the AGG-RS groups.  Regenerates a
three-way comparison (buggy 5.13 → partially patched → fully patched)
and benchmarks the diff operation itself.
"""

from repro import CampaignConfig, Kit, MachineConfig, fixed_kernel, linux_5_13
from repro.core import diff_campaigns
from repro.corpus import build_corpus

from benchmarks.support import emit_table


def test_regression_gate_three_way(bench_corpus, benchmark):
    def campaign(bugs):
        return Kit(CampaignConfig(machine=MachineConfig(bugs=bugs),
                                  corpus=list(bench_corpus),
                                  diagnose=True)).run()

    buggy = campaign(linux_5_13())
    partial = campaign(linux_5_13().copy(ptype_leak=False,
                                         rds_bind_global=False))
    fixed = campaign(fixed_kernel())

    step_one = benchmark(diff_campaigns, buggy, partial)
    step_two = diff_campaigns(partial, fixed)

    lines = [f"{'transition':<34} {'resolved':>9} {'introduced':>11} "
             f"{'persisting':>11}",
             "-" * 70,
             f"{'5.13 -> 5.13+ptype,rds fixes':<34} "
             f"{len(step_one.resolved):>9} {len(step_one.introduced):>11} "
             f"{len(step_one.persisting):>11}",
             f"{'partial -> fully patched':<34} "
             f"{len(step_two.resolved):>9} {len(step_two.introduced):>11} "
             f"{len(step_two.persisting):>11}"]
    lines.append("")
    lines.append("gate invariant: no transition introduces interference; "
                 "spec-imperfection FP groups persist on every kernel")
    emit_table("regression_gate", "Regression gate across kernel builds",
               lines)

    assert not step_one.introduced and not step_two.introduced, \
        "gating diffs at the AGG-R level must be monotone under fixes"
    assert step_one.resolved, "the two patches must resolve groups"
    assert step_two.resolved, "the remaining fixes must resolve groups"
    # The imperfect-spec FP class survives all three kernels.
    assert any("stat" in key[0] for key in step_two.persisting) or \
        step_two.persisting
