"""Regression gating across kernel builds — the downstream workflow.

Not a paper table, but the deployment the artifact enables: run one
campaign per kernel build and diff the AGG-RS groups.  Regenerates a
three-way comparison (buggy 5.13 → partially patched → fully patched)
and benchmarks the diff operation itself.

Also hosts the performance gates of the fast-restore engine (segmented
restore must beat full restore by the PR's acceptance margin, the
per-reset latency must stay within budget, and campaign execution rate
must not regress below its floor) and the static-analysis gate (the
clean kernel lints clean, the injected bugs are rediscovered without
execution, the shared caches keep their lock discipline).
"""

import time

from repro import CampaignConfig, Kit, MachineConfig, fixed_kernel, linux_5_13
from repro.core import diff_campaigns
from repro.corpus import build_corpus, seed_programs
from repro.vm import Machine
from repro.vm.machine import RECEIVER, SENDER

from benchmarks.support import emit_table

#: Segmented restore must be at least this much faster than full.
MIN_RESTORE_SPEEDUP = 2.0
#: Per-reset latency budget for the segmented fast path (seconds).
MAX_SEGMENTED_RESET_SECONDS = 0.002
#: Campaign throughput floor (the seed measured ~800 cases/s on the
#: slow path; a conservative floor catches order-of-magnitude breaks
#: without flaking on loaded CI machines).
MIN_EXECUTIONS_PER_SECOND = 100.0


def test_regression_gate_three_way(bench_corpus, benchmark):
    def campaign(bugs):
        return Kit(CampaignConfig(machine=MachineConfig(bugs=bugs),
                                  corpus=list(bench_corpus),
                                  diagnose=True)).run()

    buggy = campaign(linux_5_13())
    partial = campaign(linux_5_13().copy(ptype_leak=False,
                                         rds_bind_global=False))
    fixed = campaign(fixed_kernel())

    step_one = benchmark(diff_campaigns, buggy, partial)
    step_two = diff_campaigns(partial, fixed)

    lines = [f"{'transition':<34} {'resolved':>9} {'introduced':>11} "
             f"{'persisting':>11}",
             "-" * 70,
             f"{'5.13 -> 5.13+ptype,rds fixes':<34} "
             f"{len(step_one.resolved):>9} {len(step_one.introduced):>11} "
             f"{len(step_one.persisting):>11}",
             f"{'partial -> fully patched':<34} "
             f"{len(step_two.resolved):>9} {len(step_two.introduced):>11} "
             f"{len(step_two.persisting):>11}"]
    lines.append("")
    lines.append("gate invariant: no transition introduces interference; "
                 "spec-imperfection FP groups persist on every kernel")
    emit_table("regression_gate", "Regression gate across kernel builds",
               lines)

    assert not step_one.introduced and not step_two.introduced, \
        "gating diffs at the AGG-R level must be monotone under fixes"
    assert step_one.resolved, "the two patches must resolve groups"
    assert step_two.resolved, "the remaining fixes must resolve groups"
    # The imperfect-spec FP class survives all three kernels.
    assert any("stat" in key[0] for key in step_two.persisting) or \
        step_two.persisting


def test_restore_performance_gate(campaign_513, benchmark):
    """Fail the bench if segmented restore stops paying for itself."""
    seeds = seed_programs()
    sender, receiver = seeds["udp_send"], seeds["read_sockstat"]
    full = Machine(MachineConfig(bugs=linux_5_13(), full_restore=True))
    seg = Machine(MachineConfig(bugs=linux_5_13()))
    for machine in (full, seg):
        machine.reset()
        machine.run(SENDER, sender)
        machine.run(RECEIVER, receiver)

    def mean_reset(machine, runs=300):
        start = time.perf_counter()
        for _ in range(runs):
            machine.reset()
        return (time.perf_counter() - start) / runs

    full_reset = mean_reset(full)
    seg_reset = mean_reset(seg)
    benchmark(seg.reset)

    speedup = full_reset / seg_reset
    exec_rate = campaign_513.stats.executions_per_second()
    lines = [
        f"{'gate':<38} {'measured':>12} {'threshold':>12}",
        "-" * 66,
        f"{'restore speedup (full/segmented)':<38} {f'{speedup:.1f}x':>12} "
        f"{f'>={MIN_RESTORE_SPEEDUP:.1f}x':>12}",
        f"{'segmented reset latency (ms)':<38} {seg_reset * 1e3:>12.3f} "
        f"{f'<={MAX_SEGMENTED_RESET_SECONDS * 1e3:.1f}':>12}",
        f"{'campaign execution rate (cases/s)':<38} {exec_rate:>12.1f} "
        f"{f'>={MIN_EXECUTIONS_PER_SECOND:.0f}':>12}",
    ]
    emit_table("restore_gate", "Fast-restore performance gate", lines)

    assert speedup >= MIN_RESTORE_SPEEDUP, \
        f"segmented restore only {speedup:.2f}x faster than full"
    assert seg_reset <= MAX_SEGMENTED_RESET_SECONDS, \
        f"segmented reset took {seg_reset * 1e3:.3f} ms"
    assert exec_rate >= MIN_EXECUTIONS_PER_SECOND, \
        f"campaign executed only {exec_rate:.1f} cases/s"


#: Blanket injection rate for the chaos smoke gate.
CHAOS_RATE = 0.15


def test_chaos_smoke_gate(campaign_513, bench_corpus, chaos_seeds, benchmark):
    """Seeded fault campaigns must find exactly the clean bug set.

    The gate reruns the Table-2 campaign under fault injection (all
    sites, ``--faults SEED:0.15``) and fails if any injection goes
    unaccounted or an ``infra_failed`` case leaks into the bug reports.
    Pass ``--chaos`` to sweep eight seeds instead of one.
    """
    from repro import FaultPlan

    clean_bugs = sorted(campaign_513.bugs_found())

    def faulted(seed):
        plan = FaultPlan.parse(f"{seed}:{CHAOS_RATE}")
        config = CampaignConfig(
            machine=MachineConfig(bugs=linux_5_13()),
            corpus=list(bench_corpus),
            strategy="df-ia", workers=2, faults=plan)
        return Kit(config).run()

    runs = {seed: faulted(seed) for seed in chaos_seeds}
    benchmark(faulted, chaos_seeds[0])

    lines = [f"{'seed':>4} {'injected':>9} {'recovered':>10} {'infra':>6} "
             f"{'lost cases':>11} {'bug set':>8}",
             "-" * 54]
    for seed, run in sorted(runs.items()):
        stats = run.stats
        lines.append(
            f"{seed:>4} {stats.faults_injected_total():>9} "
            f"{stats.faults_recovered_total():>10} "
            f"{stats.faults_infra_total():>6} "
            f"{stats.infra_failed_cases:>11} "
            f"{'same' if sorted(run.bugs_found()) == clean_bugs else 'DIFF':>8}")
    lines.append("")
    lines.append(f"gate invariant: injected == recovered + infra_failed and "
                 f"every faulted campaign reports the clean bug set "
                 f"({len(clean_bugs)} bugs) at rate {CHAOS_RATE}")
    emit_table("chaos_gate", "Chaos fault-injection smoke gate", lines)

    for seed, run in runs.items():
        assert run.stats.faults_accounted(), \
            f"seed {seed}: injected != recovered + infra_failed"
        assert run.stats.faults_injected_total() > 0, \
            f"seed {seed}: the chaos campaign injected nothing"
        # Zero infra_failed leaks into bug reports: every report carries
        # a real divergence verdict, never an infrastructure failure.
        assert all(r.case is not None for r in run.reports), \
            f"seed {seed}: an infra_failed case leaked into the reports"
        assert sorted(run.bugs_found()) == clean_bugs, \
            f"seed {seed}: faulted bug set diverged from the clean run"


#: The resume gate interrupts the stored campaign once this fraction of
#: its pairs has been journaled...
RESUME_KILL_FRACTION = 0.8
#: ...and the resumed run may re-execute at most this fraction of the
#: campaign's pairs (the lost tail plus any in-flight work).
MAX_RESUME_REEXECUTION = 0.25


def test_resume_gate(bench_corpus, tmp_path, benchmark):
    """Fail the bench if crash-resume stops being cheap or exact.

    Runs the Table-2 campaign with a durable store, truncates the
    write-ahead journal at ~80% of its committed case records (the
    moral equivalent of SIGKILL at 80% progress), and resumes.  The
    resumed campaign must re-execute at most 25% of the pairs and
    reproduce the uninterrupted run's bug set, rendered reports, and
    AGG-RS groups byte-for-byte.
    """
    import os

    from repro.store import RECORD_CASE, decode_line

    store_dir = str(tmp_path / "store")

    def campaign(resume=False):
        config = CampaignConfig(
            machine=MachineConfig(bugs=linux_5_13()),
            corpus=list(bench_corpus), strategy="df-ia",
            store_dir=store_dir, resume=resume)
        return Kit(config).run()

    clean = campaign()
    cases_total = clean.stats.cases_total
    journal_path = os.path.join(store_dir, clean.stats.campaign_id,
                                "journal.jsonl")
    with open(journal_path, "rb") as handle:
        journal = handle.read()

    # Truncate right after the journal commits 80% of the case records.
    keep_cases = int(cases_total * RESUME_KILL_FRACTION)
    kept, committed = [], 0
    for line in journal.splitlines(keepends=True):
        record = decode_line(line.decode("utf-8"))
        if record is not None and record.get("t") == RECORD_CASE:
            committed += 1
        kept.append(line)
        if committed >= keep_cases:
            break
    with open(journal_path, "wb") as handle:
        handle.write(b"".join(kept))

    resumed = campaign(resume=True)
    reexecuted = resumed.stats.cases_total - resumed.stats.resumed_cases
    fraction = reexecuted / cases_total
    matches = (sorted(resumed.bugs_found()) == sorted(clean.bugs_found())
               and [r.render() for r in resumed.reports]
               == [r.render() for r in clean.reports]
               and resumed.groups.agg_rs_count == clean.groups.agg_rs_count)
    # Benchmark the pure-replay path: resuming the now-complete journal.
    replay = benchmark.pedantic(campaign, kwargs={"resume": True},
                                rounds=1, iterations=1)
    assert replay.stats.resumed_cases == cases_total

    lines = [
        f"{'gate':<42} {'measured':>10} {'threshold':>10}",
        "-" * 66,
        f"{'pairs re-executed after 80% kill':<42} "
        f"{f'{reexecuted}/{cases_total}':>10} "
        f"{f'<={MAX_RESUME_REEXECUTION:.0%}':>10}",
        f"{'re-execution fraction':<42} {f'{fraction:.0%}':>10} "
        f"{f'<={MAX_RESUME_REEXECUTION:.0%}':>10}",
        f"{'bug set / reports / AGG-RS parity':<42} "
        f"{'same' if matches else 'DIFF':>10} {'same':>10}",
        f"{'cases restored from the journal':<42} "
        f"{resumed.stats.resumed_cases:>10} {keep_cases:>10}",
        "",
        f"journal: {len(kept)} of {len(journal.splitlines())} records kept "
        f"at the kill point; campaign {clean.stats.campaign_id}",
    ]
    emit_table("resume_gate", "Crash-resume campaign gate", lines)

    assert matches, "the resumed campaign diverged from the clean run"
    assert resumed.stats.resumed_cases >= keep_cases
    assert fraction <= MAX_RESUME_REEXECUTION, \
        f"resume re-executed {fraction:.0%} of the campaign " \
        f"(max {MAX_RESUME_REEXECUTION:.0%})"


#: Process shards must beat a single shard by this factor at 4 shards
#: on CPU-bound work (enforced only on hosts with >= 4 CPUs).
MIN_SHARD_SPEEDUP_4X = 2.5
#: CPU-bound gate workload: jobs x spin iterations per job.
SHARD_GATE_JOBS = 48
SHARD_GATE_SPIN = 120_000


def _shard_gate_burn(machine, payload):
    """Pure-CPU job body: what the GIL serializes and fork does not."""
    value = payload
    for step in range(SHARD_GATE_SPIN):
        value = (value * 1103515245 + 12345 + step) % (2 ** 31)
    return value


def test_shard_pool_gate(bench_corpus, benchmark):
    """Fail the bench if the process shard pool stops paying for itself.

    Speedup thresholds are hardware-conditional — a 1-CPU container
    cannot parallelize CPU-bound work, so those rows are recorded but
    waived below the required core counts.  The correctness half of the
    gate always runs: every mode reports the identical bug set, a
    faulted process campaign keeps balanced books, and no shared-memory
    segment survives any run.
    """
    import os

    from repro import FaultPlan
    from repro.vm import fork_available, run_distributed, run_sharded

    if not fork_available():  # pragma: no cover - non-fork platforms
        import pytest
        pytest.skip("process shards require fork")

    cpus = os.cpu_count() or 1
    config = MachineConfig(bugs=linux_5_13())
    jobs = list(range(SHARD_GATE_JOBS))

    def timed_sharded(workers):
        start = time.perf_counter()
        report = run_sharded(config, jobs, _shard_gate_burn, workers=workers)
        elapsed = time.perf_counter() - start
        assert [r.outcome for r in report.results] \
            == [_shard_gate_burn(None, job) for job in jobs]
        return elapsed

    one_shard = timed_sharded(1)
    four_shards = timed_sharded(4)
    start = time.perf_counter()
    thread_results = run_distributed(config, jobs, _shard_gate_burn,
                                     workers=4)
    four_threads = time.perf_counter() - start
    assert [r.outcome for r in thread_results] \
        == [_shard_gate_burn(None, job) for job in jobs]
    benchmark.pedantic(timed_sharded, args=(4,), rounds=1, iterations=1)

    speedup = one_shard / four_shards
    vs_threads = four_threads / four_shards

    def campaign(**overrides):
        return Kit(CampaignConfig(machine=MachineConfig(bugs=linux_5_13()),
                                  corpus=list(bench_corpus),
                                  strategy="df-ia", **overrides)).run()

    threaded = campaign(workers=4)
    sharded = campaign(workers=4, shard_mode="process")
    chaos_plan = FaultPlan.parse(f"3:{CHAOS_RATE}")
    chaos = campaign(workers=4, shard_mode="process", faults=chaos_plan)
    leftovers = [entry for entry in os.listdir("/dev/shm")
                 if entry.startswith("kitshm")] \
        if os.path.isdir("/dev/shm") else []

    waiver_4x = "enforced" if cpus >= 4 else f"waived ({cpus} cpu)"
    waiver_thread = "enforced" if cpus >= 2 else f"waived ({cpus} cpu)"
    lines = [
        f"{'gate':<40} {'measured':>10} {'threshold':>10} {'status':>14}",
        "-" * 78,
        f"{'4-shard speedup vs 1 shard':<40} {f'{speedup:.2f}x':>10} "
        f"{f'>={MIN_SHARD_SPEEDUP_4X:.1f}x':>10} {waiver_4x:>14}",
        f"{'4 shards vs 4 threads (CPU-bound)':<40} "
        f"{f'{vs_threads:.2f}x':>10} {'>=1.0x':>10} {waiver_thread:>14}",
        f"{'campaign bug-set parity (proc==thread)':<40} "
        f"{'same' if sorted(sharded.bugs_found()) == sorted(threaded.bugs_found()) else 'DIFF':>10} "
        f"{'same':>10} {'enforced':>14}",
        f"{'faulted process campaign accounted':<40} "
        f"{'yes' if chaos.stats.faults_accounted() else 'NO':>10} "
        f"{'yes':>10} {'enforced':>14}",
        f"{'leaked /dev/shm segments':<40} {len(leftovers):>10} "
        f"{'0':>10} {'enforced':>14}",
        "",
        f"workload: {SHARD_GATE_JOBS} jobs x {SHARD_GATE_SPIN} spins; "
        f"1 shard {one_shard * 1e3:.0f} ms, 4 shards "
        f"{four_shards * 1e3:.0f} ms, 4 threads {four_threads * 1e3:.0f} ms "
        f"on {cpus} cpu(s)",
    ]
    emit_table("shard_gate", "Process shard pool gate", lines)

    assert sorted(sharded.bugs_found()) == sorted(threaded.bugs_found())
    assert sorted(chaos.bugs_found()) == sorted(threaded.bugs_found())
    assert chaos.stats.faults_accounted()
    assert chaos.stats.faults_injected_total() > 0
    assert all(r.case is not None for r in chaos.reports)
    assert not leftovers, f"leaked shm segments: {leftovers}"
    if cpus >= 4:
        assert speedup >= MIN_SHARD_SPEEDUP_4X, \
            f"4 shards only {speedup:.2f}x faster than one"
    if cpus >= 2:
        assert vs_threads >= 1.0, \
            f"process pool slower than threads on CPU-bound work " \
            f"({vs_threads:.2f}x)"


#: Sender-state memoization must beat re-execution by this factor on
#: workloads where senders average >= 4 paired receivers.
MIN_SENDER_CACHE_SPEEDUP = 1.5
#: Gate workload shape: expensive senders (concatenated seed programs)
#: each paired with this many receivers.
GATE_SENDER_WIDTH = 14
GATE_FAN_OUT = 8


def test_sender_cache_performance_gate(benchmark):
    """Fail the bench if sender-state memoization stops paying for itself.

    The workload mirrors the affinity-batched campaign's sweet spot:
    a few expensive senders, each paired with ``GATE_FAN_OUT`` (>= 4)
    receivers, so each memoized delta is restored fan-out − 1 times.
    Measured best-of-reps on fully warmed runners (see
    ``bench_sender_cache.measure_workload``).
    """
    from repro.core import SenderStateCache, TestCaseRunner

    from benchmarks.bench_sender_cache import measure_workload

    programs = [program for _, program in sorted(seed_programs().items())]

    def wide(start):
        sender = programs[start % len(programs)]
        for step in range(1, GATE_SENDER_WIDTH):
            sender = sender.concatenate(
                programs[(start + step) % len(programs)])
        return sender

    senders = [wide(start) for start in range(4)]
    receivers = programs[:GATE_FAN_OUT]
    config = MachineConfig(bugs=linux_5_13())
    uncached_s, cached_s, cache = measure_workload(
        senders, receivers, config)
    speedup = uncached_s / cached_s

    runner = TestCaseRunner(Machine(config),
                            sender_states=SenderStateCache())
    runner.run_with_sender(senders[0], receivers[0])
    benchmark(runner.run_with_sender, senders[0], receivers[1])

    cases = len(senders) * len(receivers)
    lines = [
        f"{'gate':<38} {'measured':>12} {'threshold':>12}",
        "-" * 66,
        f"{'sender-cache speedup (uncached/cached)':<38} "
        f"{f'{speedup:.2f}x':>12} {f'>={MIN_SENDER_CACHE_SPEEDUP:.1f}x':>12}",
        f"{'receivers paired per sender':<38} "
        f"{cases // len(senders):>12} {'>=4':>12}",
        "",
        f"workload: {len(senders)} senders x {GATE_SENDER_WIDTH} "
        f"concatenated seed programs, {GATE_FAN_OUT} receivers each "
        f"({cases} cases); uncached {uncached_s * 1e3:.1f} ms, "
        f"cached {cached_s * 1e3:.1f} ms, "
        f"{cache.bytes_held} delta bytes held",
    ]
    emit_table("sender_cache_gate", "Sender-state cache performance gate",
               lines)

    assert cases // len(senders) >= 4, \
        "gate workload must average >= 4 receivers per sender"
    assert speedup >= MIN_SENDER_CACHE_SPEEDUP, \
        f"sender-state cache only {speedup:.2f}x faster than re-execution"


def test_schedule_replay_gate(benchmark):
    """The controlled-interleaving gate (see also bench_schedules.py).

    Three invariants: the sequential harness stays structurally blind
    to the race-only bugs T1-T3, the default schedule configuration
    finds every one, and each culprit ``ScheduleId`` replays the
    receiver's records byte-for-byte on a fresh machine.
    """
    from repro.core.race_scenarios import race_machine_config, reproduce_races
    from repro.core.reportcodec import encode_record
    from repro.core.schedule import replay_schedule

    sequential = reproduce_races(interleave=False)
    assert sequential.reports == [] and sequential.bugs_found() == set(), \
        "the two-phase harness found a race-only bug sequentially"

    interleaved = reproduce_races()
    assert sorted(interleaved.bugs_found()) == ["T1", "T2", "T3"], \
        f"default schedule budget missed: {sorted(interleaved.bugs_found())}"

    machine = Machine(race_machine_config())
    for report in interleaved.reports:
        replayed = replay_schedule(machine, report.case.sender,
                                   report.case.receiver,
                                   report.culprit_schedule)
        assert [encode_record(r) for r in replayed.records] \
            == [encode_record(r) for r in report.receiver_with_records], \
            f"culprit {report.culprit_schedule} did not replay byte-for-byte"
    culprit = interleaved.reports[0]
    benchmark(replay_schedule, machine, culprit.case.sender,
              culprit.case.receiver, culprit.culprit_schedule)


#: The ISSUE's acceptance bar for static bug rediscovery.
MIN_REDISCOVERY_RATE = 0.6


def test_static_analysis_gate(benchmark):
    """The `analyze --check` invariants, regenerated as a results table."""
    from repro.analysis import analyze, rediscover_bugs
    from repro.analysis.locks import check_lock_discipline
    from repro.analysis.sources import KernelSourceIndex
    from repro.cli import main as cli_main

    index = KernelSourceIndex()
    clean = analyze(bugs=fixed_kernel(), kernel_name="fixed")
    rediscovery = benchmark(rediscover_bugs, index)
    lock_findings = check_lock_discipline()

    lines = [f"{'bug flag':<28} {'expected':>9} {'found':>6} {'path hit':>9}",
             "-" * 56]
    for flag in sorted(rediscovery.per_bug):
        result = rediscovery.per_bug[flag]
        lines.append(f"{flag:<28} "
                     f"{'static' if result.expected else 'value':>9} "
                     f"{'yes' if result.found else 'no':>6} "
                     f"{'yes' if result.hit_expected_path else 'no':>9}")
    lines.append("")
    lines.append(f"clean-kernel unsuppressed findings: "
                 f"{len(clean.unsuppressed())} "
                 f"(suppressed: {len(clean.escape_findings) - len(clean.unsuppressed())})")
    lines.append(f"rediscovery rate: {len(rediscovery.found)}/"
                 f"{len(rediscovery.per_bug)} = {rediscovery.rate():.0%} "
                 f"(gate: >={MIN_REDISCOVERY_RATE:.0%})")
    lines.append(f"lock-discipline findings: {len(lock_findings)}")
    emit_table("static_analysis", "Static interference analysis gate", lines)

    assert clean.unsuppressed() == [], \
        "the patched kernel must lint clean"
    assert rediscovery.rate() >= MIN_REDISCOVERY_RATE, \
        f"rediscovered only {rediscovery.rate():.0%} of the injected bugs"
    assert rediscovery.matches_expectations(), \
        "a statically detectable bug was missed (or a value bug 'found')"
    for flag, result in rediscovery.per_bug.items():
        if result.expected:
            assert result.findings, f"{flag}: no fresh static finding"
    assert lock_findings == [], \
        "shared pipeline caches broke the lexical lock discipline"
    assert cli_main(["analyze", "--check"]) == 0


#: Frozen race-pair candidate counts for the two kernel presets.  The
#: join is deterministic, so any drift means the interpreter, the
#: lockset annotations, or the kernel model changed — re-freeze
#: deliberately, never silently.
#: Re-frozen when the T1-T3 race-window kernel code landed (+24 pairs
#: per preset from the new global counters and pending tables).
FROZEN_RACE_CANDIDATES = {"5.13": 451, "fixed": 490}
#: Warm incremental analysis must beat a cold run by this factor.
MIN_WARM_SPEEDUP = 5.0


def test_race_analysis_gate(tmp_path, benchmark):
    """The lockset race analyzer's gate.

    Three invariants: the repo's own concurrency lint is clean (zero
    unsuppressed L1/L2/S1 findings over ``src/``), the kernel race-pair
    candidate counts match their frozen values per preset, and the
    incremental cache makes a warm ``analyze --races`` run at least
    ``MIN_WARM_SPEEDUP``x faster than a cold one.
    """
    from repro.analysis import analyze, rediscover_races
    from repro.analysis.cache import AnalysisCache
    from repro.analysis.locks import check_lock_discipline

    lint = check_lock_discipline()
    by_code = {}
    for finding in lint:
        by_code.setdefault(finding.code, []).append(finding)

    counts = {}
    for preset, bugs in (("5.13", linux_5_13()), ("fixed", fixed_kernel())):
        report = analyze(bugs=bugs, kernel_name=preset, races=True)
        counts[preset] = len(report.races)

    cache = AnalysisCache(str(tmp_path / "cache"))

    def timed(label):
        start = time.perf_counter()
        analyze(bugs=linux_5_13(), kernel_name="5.13", races=True,
                cache=cache)
        return time.perf_counter() - start

    cold = timed("cold")
    warm = min(timed("warm") for _ in range(3))
    benchmark.pedantic(timed, args=("warm",), rounds=1, iterations=1)
    speedup = cold / warm

    rediscovery = rediscover_races()

    lines = [
        f"{'gate':<42} {'measured':>10} {'threshold':>10}",
        "-" * 66,
        f"{'unsuppressed L1/L2/S1 findings (src/)':<42} "
        f"{len(lint):>10} {'0':>10}",
        f"{'race candidates, kernel 5.13':<42} {counts['5.13']:>10} "
        f"{FROZEN_RACE_CANDIDATES['5.13']:>10}",
        f"{'race candidates, kernel fixed':<42} {counts['fixed']:>10} "
        f"{FROZEN_RACE_CANDIDATES['fixed']:>10}",
        f"{'warm/cold incremental speedup':<42} {f'{speedup:.1f}x':>10} "
        f"{f'>={MIN_WARM_SPEEDUP:.0f}x':>10}",
        f"{'race rediscovery (vs injected bugs)':<42} "
        f"{f'{len(rediscovery.found)}/{len(rediscovery.per_bug)}':>10} "
        f"{'expected':>10}",
        "",
        f"cold {cold * 1e3:.0f} ms, warm {warm * 1e3:.0f} ms; "
        "candidate counts are frozen — re-freeze deliberately on any "
        "intentional analyzer or kernel-model change",
    ]
    emit_table("race_gate", "Lockset race analysis gate", lines)

    assert lint == [], "unsuppressed concurrency-lint findings: " + \
        "; ".join(f.render() for f in lint)
    assert not by_code.get("L2") and not by_code.get("S1")
    assert counts == FROZEN_RACE_CANDIDATES, \
        f"race candidate counts drifted: {counts}"
    assert speedup >= MIN_WARM_SPEEDUP, \
        f"warm incremental analysis only {speedup:.1f}x faster than cold"
    assert rediscovery.matches_expectations(), \
        "race rediscovery deviates from the bug registry's expectations"


#: The paper's syzkaller corpus (§6.1) — the scale the streaming
#: pipeline must support within a 30-minute generation+indexing budget.
PAPER_CORPUS_SIZE = 98_853
MAX_PAPER_CORPUS_SECONDS = 1800.0
#: Throughput floors, an order of magnitude under measured rates
#: (generation ~26k/s, dedup screen ~10k cand/s, indexing ~128k pts/s)
#: so loaded CI machines never flake while real regressions still trip.
MIN_GENERATION_RATE = 2000.0
MIN_DEDUP_SCREEN_RATE = 500.0
MIN_INDEX_POINT_RATE = 10_000.0
#: Streamed generation→disk must hold peak traced memory well under the
#: materialized ``build_corpus`` list (measured ~11% at 4000 programs).
MAX_STREAM_PEAK_FRACTION = 0.5
STREAM_MEMORY_PROBE_SIZE = 4000


def test_corpus_scale_gate(bench_corpus, tmp_path, benchmark):
    """Paper-scale corpus pipeline gate (ISSUE 10 acceptance).

    Four invariants: generation, dedup screening, and columnar indexing
    hold their throughput floors and together extrapolate a 98,853-
    program run under the 30-minute budget; streamed generation→disk
    keeps peak memory bounded (a fraction of the materialized build);
    and — the load-bearing one — the streamed merge-join backend is
    pair-for-pair identical to the in-memory index at the 200-program
    bench scale, down to the campaign's bug set and reports.
    """
    import tracemalloc

    from repro.core.accessindex import ColumnarAccessIndex
    from repro.core.dataflow import DataFlowIndex
    from repro.core.profile import Profiler
    from repro.core.spec import default_specification
    from repro.corpus import CorpusWriter, CoverageDeduper, StreamStats, \
        stream_corpus

    # 1. Generation throughput: streamed, written to disk as it goes.
    gen_stats = StreamStats()
    start = time.monotonic()
    with CorpusWriter(str(tmp_path / "gen")) as writer:
        for program in stream_corpus(2000, seed=1, stats=gen_stats):
            writer.add(program)
    gen_rate = gen_stats.emitted / (time.monotonic() - start)

    # 2. Dedup screening throughput (candidates examined per second).
    dedup_stats = StreamStats()
    start = time.monotonic()
    for __ in stream_corpus(300, seed=1, deduper=CoverageDeduper(),
                            stats=dedup_stats):
        pass
    screen_rate = dedup_stats.candidates / (time.monotonic() - start)

    # 3. Bounded peak memory: streamed writer vs materialized list.
    def stream_peak():
        tracemalloc.start()
        with CorpusWriter(str(tmp_path / "mem")) as writer:
            for program in stream_corpus(STREAM_MEMORY_PROBE_SIZE, seed=2,
                                         stats=None):
                writer.add(program)
        __, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    def materialized_peak():
        tracemalloc.start()
        corpus = build_corpus(STREAM_MEMORY_PROBE_SIZE, seed=2)
        __, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del corpus
        return peak

    streamed_peak, full_peak = stream_peak(), materialized_peak()
    peak_fraction = streamed_peak / full_peak

    # 4. Pair-for-pair parity at bench scale: profiles → both backends.
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    profiles = Profiler(machine).profile_corpus(list(bench_corpus))
    spec = default_specification()
    start = time.monotonic()
    with ColumnarAccessIndex.build(iter(profiles), spec,
                                   run_points=4096) as col:
        index_seconds = time.monotonic() - start
        points = col.write_points + col.read_points
        run_segments, disk_bytes = col.run_segments, col.bytes_on_disk()
        mem_index = DataFlowIndex.build(profiles, spec)
        assert list(mem_index.iter_overlaps()) == list(col.iter_overlaps()), \
            "merge-join overlap rows diverge from the in-memory index"
    index_rate = points / index_seconds

    def campaign(backend):
        return Kit(CampaignConfig(machine=MachineConfig(bugs=linux_5_13()),
                                  corpus=list(bench_corpus),
                                  index_backend=backend)).run()

    mem_run = campaign("memory")
    col_run = benchmark.pedantic(campaign, args=("columnar",), rounds=1,
                                 iterations=1)
    pair_parity = [c.pair for c in mem_run.generation.test_cases] \
        == [c.pair for c in col_run.generation.test_cases]
    bug_parity = sorted(mem_run.bugs_found()) == sorted(col_run.bugs_found())

    # 5. Extrapolate the paper-scale run from the slowest stage rates.
    paper_points = points / len(bench_corpus) * PAPER_CORPUS_SIZE
    paper_seconds = PAPER_CORPUS_SIZE / gen_rate \
        + PAPER_CORPUS_SIZE / screen_rate \
        + paper_points / index_rate

    lines = [
        f"{'gate':<44} {'measured':>12} {'threshold':>12}",
        "-" * 70,
        f"{'streamed generation (prog/s)':<44} {gen_rate:>12.0f} "
        f"{f'>={MIN_GENERATION_RATE:.0f}':>12}",
        f"{'coverage-dedup screen (cand/s)':<44} {screen_rate:>12.0f} "
        f"{f'>={MIN_DEDUP_SCREEN_RATE:.0f}':>12}",
        f"{'columnar indexing (points/s)':<44} {index_rate:>12.0f} "
        f"{f'>={MIN_INDEX_POINT_RATE:.0f}':>12}",
        f"{'streamed/materialized peak memory':<44} "
        f"{f'{peak_fraction:.2f}':>12} "
        f"{f'<{MAX_STREAM_PEAK_FRACTION:.2f}':>12}",
        f"{'extrapolated 98,853-program run (s)':<44} "
        f"{paper_seconds:>12.1f} {f'<{MAX_PAPER_CORPUS_SECONDS:.0f}':>12}",
        f"{'merge-join pair parity at 200':<44} "
        f"{'identical' if pair_parity else 'DIVERGED':>12} {'identical':>12}",
        f"{'bug-set parity at 200':<44} "
        f"{'identical' if bug_parity else 'DIVERGED':>12} {'identical':>12}",
        "",
        f"columnar index at {len(bench_corpus)} programs: {points} points, "
        f"{run_segments} run segments, {disk_bytes} bytes on disk; "
        f"campaign bugs on both backends: "
        f"{'/'.join(sorted(col_run.bugs_found()))}",
        f"streamed peak {streamed_peak / 1024:.0f} KiB vs materialized "
        f"{full_peak / 1024:.0f} KiB at {STREAM_MEMORY_PROBE_SIZE} programs",
    ]
    emit_table("corpus_gate", "Paper-scale corpus pipeline gate", lines)

    assert gen_rate >= MIN_GENERATION_RATE, \
        f"streamed generation regressed to {gen_rate:.0f} prog/s"
    assert screen_rate >= MIN_DEDUP_SCREEN_RATE, \
        f"dedup screening regressed to {screen_rate:.0f} cand/s"
    assert index_rate >= MIN_INDEX_POINT_RATE, \
        f"columnar indexing regressed to {index_rate:.0f} points/s"
    assert peak_fraction < MAX_STREAM_PEAK_FRACTION, \
        f"streamed generation peak is {peak_fraction:.2f}x the " \
        f"materialized build — the stream is buffering"
    assert paper_seconds < MAX_PAPER_CORPUS_SECONDS, \
        f"extrapolated paper-scale run takes {paper_seconds:.0f}s"
    assert pair_parity, \
        "columnar campaign generated a different Table-4 pair sequence"
    assert bug_parity, "columnar campaign found a different bug set"
    assert len(mem_run.reports) == len(col_run.reports)
