"""§6.5 performance: profiling and execution throughput.

The paper reports, for the real testbed:

* corpus profiling: 98,853 programs in <9 hours on one server
  (4 executions per program),
* analysis + generation: <30 minutes on one machine,
* test case execution: 31.3 executions/second across 110 VMs,
  1.13M test cases in 10 hours.

These benches measure the simulator's equivalents per operation —
snapshot restore (the QEMU-snapshot stand-in), single-program profiling
(the 4-run protocol), test-case execution (two-execution protocol), and
trace AST comparison — and emit a §6.5-shaped summary from the main
campaign's stage timings.
"""

from repro import MachineConfig, linux_5_13
from repro.core import (
    Profiler,
    TestCaseRunner,
    build_trace_ast,
    syscall_trace_cmp,
)
from repro.corpus import seed_programs
from repro.vm import Machine

from benchmarks.support import emit_table


def test_bench_snapshot_restore(benchmark):
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    benchmark(machine.reset)


def test_bench_profile_one_program(benchmark):
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    profiler = Profiler(machine)
    program = seed_programs()["udp_send"]
    profile = benchmark(profiler.profile, program)
    assert profile.sender.total_accesses() > 0


def test_bench_test_case_execution(benchmark):
    """One §4.2 test-case execution: restore + sender + receiver."""
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    runner = TestCaseRunner(machine)
    seeds = seed_programs()
    sender, receiver = seeds["packet_socket"], seeds["read_ptype"]
    benchmark(runner.run_with_sender, sender, receiver)


def test_bench_trace_ast_compare(benchmark):
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    seeds = seed_programs()
    machine.reset()
    records_a = machine.run("receiver", seeds["read_sockstat"]).records
    machine.reset()
    machine.run("sender", seeds["udp_send"])
    records_b = machine.run("receiver", seeds["read_sockstat"]).records

    def build_and_compare():
        return syscall_trace_cmp(build_trace_ast(records_a),
                                 build_trace_ast(records_b))

    diffs = benchmark(build_and_compare)
    assert diffs


def test_section65_throughput_summary(campaign_513, benchmark):
    # Keep the summary test benchmark-visible: time one snapshot restore.
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    benchmark(machine.reset)

    stats = campaign_513.stats
    profile_rate = (stats.profile_runs / stats.profile_seconds
                    if stats.profile_seconds else 0.0)
    exec_rate = stats.executions_per_second()
    stage_restore = (f"{stats.profile_restore_seconds:.2f}/"
                     f"{stats.execution_restore_seconds:.2f}/"
                     f"{stats.diagnosis_restore_seconds:.2f}")
    lines = [
        f"{'Stage':<34} {'This repro':>16} {'Paper':>22}",
        "-" * 76,
        f"{'Corpus profiled (programs)':<34} {stats.corpus_size:>16} "
        f"{'98,853':>22}",
        f"{'Profiling runs (4 per program)':<34} {stats.profile_runs:>16} "
        f"{'<9 h on 1 server':>22}",
        f"{'Profiling rate (runs/s)':<34} {profile_rate:>16.1f} {'—':>22}",
        f"{'Analysis+generation (s)':<34} {stats.analysis_seconds:>16.2f} "
        f"{'<30 min':>22}",
        f"{'Test cases executed':<34} {stats.cases_executed:>16} "
        f"{'1.13M in 10 h':>22}",
        f"{'Execution rate (cases/s)':<34} {exec_rate:>16.1f} "
        f"{'31.3 (110 VMs)':>22}",
        f"{'Non-det re-runs':<34} {stats.nondet_runs:>16} {'cached on disk':>22}",
        f"{'Diagnosis re-runs (Algorithm 2)':<34} "
        f"{stats.diagnosis_reruns:>16} {'—':>22}",
        f"{'Snapshot restores':<34} {stats.restore_count:>16} "
        f"{'QEMU snapshot load':>22}",
        f"{'  segmented / full':<34} "
        f"{f'{stats.segmented_restores} / {stats.full_restores}':>16} "
        f"{'—':>22}",
        f"{'  segments skipped':<34} "
        f"{f'{stats.segments_skipped_rate():.0%}':>16} {'—':>22}",
        f"{'  restore s (prof/exec/diag)':<34} {stage_restore:>16} "
        f"{'—':>22}",
        f"{'Baseline cache hit rate':<34} "
        f"{f'{stats.baseline_hit_rate():.0%}':>16} {'—':>22}",
        f"{'Non-det cache hit rate':<34} "
        f"{f'{stats.nondet_cache_hit_rate():.0%}':>16} {'—':>22}",
        f"{'Sender-cache hit rate':<34} "
        f"{f'{stats.sender_cache_hit_rate():.0%}':>16} {'—':>22}",
        f"{'  deltas held / bytes':<34} "
        f"{f'{stats.sender_cache_entries} / {stats.sender_cache_bytes}':>16} "
        f"{'—':>22}",
        f"{'  diagnosis prefix reuses':<34} "
        f"{stats.diagnosis_prefix_reuses:>16} {'—':>22}",
    ]
    emit_table("section65_performance", "§6.5 performance summary", lines)

    assert exec_rate > 0
    assert stats.profile_runs == 4 * stats.corpus_size
    # Tentpole telemetry invariants: the campaign ran on the segmented
    # fast path and it skipped most segments on a typical reset.
    assert stats.restore_count > 0
    assert stats.segmented_restores > 0 and stats.full_restores == 0
    assert stats.segments_skipped_rate() > 0.5
    # Sender-state memoization served the campaign: the memoized deltas
    # took hits and every Algorithm 2 re-run replayed a prefix state.
    assert stats.sender_cache_hits > 0
    assert stats.sender_cache_entries > 0
    assert stats.diagnosis_prefix_reuses == stats.diagnosis_reruns
