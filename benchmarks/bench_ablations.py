"""Ablation benchmarks for the design choices DESIGN.md calls out.

Three ablations, each isolating one mechanism the paper's design depends
on:

* **CONFIG_JUMP_LABEL** (§6.1) — static keys implemented by code patching
  are invisible to the memory instrumentation, so data-flow generation
  cannot reach bugs #2/#4; random generation still can.
* **Non-determinism re-runs** (§4.3.2) — without the multiple
  different-start-time re-runs, timing noise is indistinguishable from
  interference and the inherently-noisy conntrack dump (bug F's file)
  floods the results with an unreliable report.
* **Bounds learning** (§7 future work) — the envelope detector recovers
  exactly the class the boolean non-det filter gives up on: it detects
  bug F while staying clean on the fixed kernel.
"""

from repro import CampaignConfig, Kit, KernelConfig, MachineConfig, linux_5_13
from repro.core import BoundsDetector, Detector, Outcome, TestCase
from repro.core.spec import default_specification
from repro.corpus import build_corpus, seed_programs
from repro.kernel import fixed_kernel, known_bug_kernel
from repro.vm import Machine, MachineConfig as MC

from benchmarks.support import emit_table

_FLOWLABEL_BUGS = {"2", "4"}


def test_ablation_jump_label(benchmark):
    corpus = build_corpus(100, seed=1)

    def campaign(jump_label):
        config = CampaignConfig(
            machine=MachineConfig(kernel=KernelConfig(jump_label=jump_label),
                                  bugs=linux_5_13()),
            corpus=list(corpus),
            diagnose=False,
        )
        return Kit(config).run()

    patched = benchmark.pedantic(campaign, args=(True,), rounds=1,
                                 iterations=1)
    plain = campaign(False)

    lines = [f"{'CONFIG_JUMP_LABEL':<20} {'DF-IA finds #2/#4':<20} "
             f"{'all numbered bugs'}",
             "-" * 64]
    for label, result in (("y (code patching)", patched),
                          ("n (plain memory)", plain)):
        hit = bool(result.bugs_found() & _FLOWLABEL_BUGS)
        numbered = sorted(b for b in result.bugs_found() if b.isdigit())
        lines.append(f"{label:<20} {('yes' if hit else 'NO'):<20} "
                     f"{numbered}")
    lines.append("")
    lines.append("paper §6.1: the static key's data flow is invisible under "
                 "code patching; disabling the option exposes it")
    emit_table("ablation_jump_label", "Ablation: CONFIG_JUMP_LABEL vs "
                                      "data-flow analysis", lines)

    assert not patched.bugs_found() & _FLOWLABEL_BUGS
    assert _FLOWLABEL_BUGS <= plain.bugs_found()


def test_ablation_nondet_reruns(benchmark):
    """Fewer re-run offsets => timing noise masquerades as interference."""
    seeds = seed_programs()
    spec = default_specification()
    case = TestCase(0, 1, seeds["udp_send"], seeds["read_nf_conntrack"])

    def outcome_with_offsets(offsets):
        machine = Machine(MC(bugs=known_bug_kernel("F")))
        from repro.core import NondetAnalyzer

        detector = Detector(machine, spec,
                            NondetAnalyzer(machine, offsets=offsets))
        return detector.check_case(case)

    single = benchmark.pedantic(outcome_with_offsets, args=((0,),),
                                rounds=3, iterations=1)
    triple = outcome_with_offsets((0, 7, 101))

    lines = [f"{'re-run offsets':<18} {'outcome':<22} note",
             "-" * 72,
             f"{'1 (no variation)':<18} {single.outcome.value:<22} "
             "timing noise survives as a (non-reproducible) report",
             f"{'3 (paper design)':<18} {triple.outcome.value:<22} "
             "the unreliable divergence is identified and dropped"]
    emit_table("ablation_nondet", "Ablation: non-determinism re-runs "
                                  "(§4.3.2)", lines)

    assert single.outcome is Outcome.REPORT, \
        "without varied re-runs the noisy divergence looks like a bug"
    assert triple.outcome is Outcome.FILTERED_NONDET


def test_ablation_bounds_detector(benchmark):
    """§7 extension: envelopes recover the non-deterministic-resource class."""
    seeds = seed_programs()
    spec = default_specification()

    baseline = Detector(Machine(MC(bugs=known_bug_kernel("F"))), spec)
    baseline_outcome = baseline.check_case(
        TestCase(0, 1, seeds["udp_send"], seeds["read_nf_conntrack"]))

    buggy_bounds = BoundsDetector(Machine(MC(bugs=known_bug_kernel("F"))),
                                  spec)
    violations = benchmark(buggy_bounds.check, seeds["udp_send"],
                           seeds["read_nf_conntrack"])

    clean_bounds = BoundsDetector(Machine(MC(bugs=fixed_kernel())), spec)
    clean = clean_bounds.check(seeds["udp_send"], seeds["read_nf_conntrack"])

    lines = [f"{'detector':<26} {'bug-F kernel':<22} {'fixed kernel'}",
             "-" * 64,
             f"{'functional interference':<26} "
             f"{baseline_outcome.outcome.value:<22} (not applicable)",
             f"{'bounds learning (§7)':<26} "
             f"{f'{len(violations)} violation(s)':<22} "
             f"{len(clean)} violation(s)"]
    emit_table("ablation_bounds", "Ablation: bounds-learning detector "
                                  "(§7 future work)", lines)

    assert baseline_outcome.outcome is Outcome.FILTERED_NONDET
    assert violations and not clean


def test_ablation_concurrent_schedules(benchmark):
    """§7 extension: interleaved schedules recover transient interference.

    A sender that creates and closes a socket restores every counter
    before the receiver runs — two-phase execution sees nothing.  The
    schedule-exploring detector witnesses the interference on exactly
    the interleavings where the receiver samples mid-sender.
    """
    from repro.core import ConcurrentDetector, sequential_schedule
    from repro.corpus import prog

    transient = prog(("socket", 2, 1, 6), ("close", "r0"))
    probe = prog(("open", "/proc/net/sockstat", 0),
                 ("pread64", "r0", 512, 0),
                 ("pread64", "r0", 512, 0))

    sequential = Detector(Machine(MC(bugs=linux_5_13())),
                          default_specification())
    baseline = sequential.check_case(TestCase(0, 1, transient, probe))

    concurrent = ConcurrentDetector(Machine(MC(bugs=linux_5_13())),
                                    default_specification())
    report = benchmark(concurrent.check_case, transient, probe)

    lines = [f"{'detector':<28} {'outcome'}",
             "-" * 56,
             f"{'two-phase (paper baseline)':<28} {baseline.outcome.value}",
             f"{'interleaved schedules (§7)':<28} "
             f"witnessed on {report.schedules}"]
    lines.append("")
    lines.append("the two-phase order "
                 f"{sequential_schedule(2, 3)!r} is not a witness: the "
                 "interference is transient")
    emit_table("ablation_concurrent", "Ablation: concurrency extension "
                                      "(transient interference)", lines)

    assert baseline.outcome is Outcome.PASS
    assert report is not None and report.transient_only
