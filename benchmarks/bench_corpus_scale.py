"""Paper-scale corpus pipeline benchmarks (ISSUE 10 / ROADMAP item 4).

The paper profiles 98,853 syzkaller programs (§6.1).  This bench sweeps
the streamed generation pipeline and the columnar access index over
scaled-down corpus sizes, measures throughput and peak traced memory,
and extrapolates the wall-clock of a 100k-program generation+indexing
run — the numbers behind ``benchmarks/results/corpus_gate.txt``'s
budget check.
"""

from __future__ import annotations

import time
import tracemalloc

from repro import MachineConfig, linux_5_13
from repro.core.accessindex import ColumnarAccessIndex
from repro.core.dataflow import DataFlowIndex
from repro.core.profile import Profiler
from repro.core.spec import default_specification
from repro.corpus import (
    CorpusWriter,
    CoverageDeduper,
    StreamStats,
    build_corpus,
    stream_corpus,
)
from repro.vm import Machine

from benchmarks.support import emit_table

PAPER_CORPUS = 98_853
SWEEP_SIZES = (500, 1000, 2000)


def _timed(fn):
    start = time.monotonic()
    result = fn()
    return result, time.monotonic() - start


def test_streaming_generation_scale(tmp_path, benchmark):
    """Sweep streamed generation→disk and extrapolate to paper scale."""
    lines = [f"{'size':>6} {'admitted':>9} {'cand/s':>9} {'prog/s':>9} "
             f"{'peak KiB':>9}"]
    rates = []
    for size in SWEEP_SIZES:
        directory = str(tmp_path / f"gen{size}")
        tracemalloc.start()
        start = time.monotonic()
        stats = StreamStats()
        with CorpusWriter(directory) as writer:
            for program in stream_corpus(size, seed=1, stats=stats):
                writer.add(program)
        elapsed = time.monotonic() - start
        __, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        rate = stats.emitted / elapsed
        rates.append(rate)
        lines.append(f"{size:>6} {stats.emitted:>9} "
                     f"{stats.candidates / elapsed:>9.0f} {rate:>9.0f} "
                     f"{peak / 1024:>9.0f}")
    benchmark(lambda: sum(1 for __ in stream_corpus(1000, seed=1)))
    full_seconds = PAPER_CORPUS / min(rates)
    lines.append(f"extrapolated {PAPER_CORPUS} programs: "
                 f"{full_seconds:.1f}s at the slowest observed rate")
    emit_table("corpus_scale", "Streaming corpus generation scale sweep",
               lines)
    assert min(rates) > 0


def test_coverage_dedup_screen_rate(benchmark):
    """Static coverage dedup screens candidates well above profiling rate."""
    stats = StreamStats()

    def screen():
        local = StreamStats()
        for __ in stream_corpus(300, seed=1, deduper=CoverageDeduper(),
                                stats=local):
            pass
        return local

    result = benchmark.pedantic(screen, rounds=1, iterations=1)
    stats = result
    lines = [
        f"candidates screened : {stats.candidates}",
        f"admitted            : {stats.emitted}",
        f"coverage drops      : {stats.coverage_drops}",
        f"duplicate drops     : {stats.duplicate_drops}",
    ]
    emit_table("corpus_dedup", "Coverage-dedup screening", lines)
    assert stats.coverage_drops > 0


def test_columnar_index_scale(benchmark):
    """Columnar build+join throughput and on-disk footprint at 200."""
    corpus = build_corpus(200, seed=1)
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    profiles, profile_seconds = _timed(
        lambda: Profiler(machine).profile_corpus(corpus))
    spec = default_specification()

    def build_and_join():
        with ColumnarAccessIndex.build(iter(profiles), spec,
                                       run_points=256) as col:
            rows = sum(1 for __ in col.iter_overlaps())
            return rows, col.write_points + col.read_points, \
                col.bytes_on_disk(), col.run_segments

    (rows, points, disk_bytes, runs), index_seconds = _timed(build_and_join)
    benchmark(build_and_join)
    mem = DataFlowIndex.build(profiles, spec)
    assert rows == len(mem.overlap_addresses())
    point_rate = points / index_seconds
    paper_points = points / len(corpus) * PAPER_CORPUS
    lines = [
        f"programs profiled    : {len(corpus)} "
        f"({len(corpus) / profile_seconds:.0f}/s)",
        f"access points        : {points} ({point_rate:.0f}/s indexed)",
        f"run segments / bytes : {runs} / {disk_bytes}",
        f"overlap addresses    : {rows}",
        f"extrapolated {PAPER_CORPUS} programs: "
        f"~{paper_points:.0f} points, "
        f"{paper_points / point_rate:.1f}s indexing",
    ]
    emit_table("corpus_index_scale", "Columnar access-index scale", lines)
