"""Helpers shared by the benchmark harness."""

from __future__ import annotations

import os
from typing import Sequence

#: Corpus scale for benchmark campaigns (paper: 98,853 — see DESIGN.md's
#: scaled-down-parameters table).
BENCH_CORPUS_SIZE = 200
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_table(name: str, title: str, lines: Sequence[str]) -> str:
    """Print a regenerated table and persist it to benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join([title, "=" * len(title), *lines, ""])
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text)
    print(f"\n{text}[written to {path}]")
    return text
