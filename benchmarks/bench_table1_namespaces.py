"""Table 1: Linux namespace types and the resource each isolates.

Table 1 is descriptive, so the regeneration is an inventory check —
every type must be constructible, joinable via ``unshare``, and distinct
from the initial instance.  The benchmark measures namespace creation
throughput (``unshare`` with all eight flags), the hot setup path of
every container boot.
"""

from repro.kernel import Kernel
from repro.kernel.namespaces import (
    ALL_NAMESPACE_FLAGS,
    CLONE_FLAGS,
    ISOLATED_RESOURCE,
    NamespaceType,
)

from benchmarks.support import emit_table


def test_table1_namespace_inventory(benchmark):
    kernel = Kernel()

    def unshare_fresh_task():
        task = kernel.spawn_task()
        kernel.unshare(task, ALL_NAMESPACE_FLAGS)
        return task

    task = benchmark(unshare_fresh_task)

    lines = [f"{'Namespace type':<12} {'Kernel resource isolated'}",
             "-" * 50]
    for ns_type in NamespaceType:
        instance = task.nsproxy.get(ns_type)
        assert instance is not kernel.init_nsproxy.get(ns_type)
        assert instance.NS_TYPE == ns_type
        lines.append(f"{ns_type.name:<12} {ISOLATED_RESOURCE[ns_type]}")
    assert len(list(NamespaceType)) == 8
    assert len(CLONE_FLAGS) == 8
    emit_table("table1", "Table 1: Linux namespace types", lines)
