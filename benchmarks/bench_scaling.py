"""Corpus-size scaling: how analysis artifacts grow with corpus size.

Not a paper table, but the scaling behaviour behind the paper's §6.5
numbers: candidate flows grow roughly quadratically with the corpus
(every writer can pair with every reader of a shared address), while
clustered test-case counts grow far slower — that gap *is* the value of
clustering (the 234M -> 1.13M compression of Table 4).

The benchmark times the full generation stage (profiling + analysis) at
the middle corpus size.
"""

from repro import MachineConfig, linux_5_13
from repro.core import (
    Profiler,
    TestCaseGenerator,
    default_specification,
    strategy_by_name,
)
from repro.corpus import build_corpus
from repro.vm import Machine

from benchmarks.support import emit_table

_SIZES = (50, 100, 200)


def _generation_stats(size: int):
    corpus = build_corpus(size, seed=1)
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    profiles = Profiler(machine).profile_corpus(corpus)
    generator = TestCaseGenerator(corpus, profiles, default_specification())
    result = generator.generate(strategy_by_name("df-ia"))
    return result


def test_scaling_corpus_size(benchmark):
    results = {size: _generation_stats(size) for size in _SIZES}
    benchmark.pedantic(_generation_stats, args=(_SIZES[1],), rounds=1,
                       iterations=1)

    lines = [f"{'corpus':>7} {'flows (DF)':>11} {'DF-IA clusters':>15} "
             f"{'compression':>12}",
             "-" * 50]
    for size in _SIZES:
        result = results[size]
        ratio = (result.flow_count / result.cluster_count
                 if result.cluster_count else 0.0)
        lines.append(f"{size:>7} {result.flow_count:>11} "
                     f"{result.cluster_count:>15} {ratio:>11.1f}x")
    lines.append("")
    lines.append("paper: 234.63M flows -> 1.13M DF-IA clusters (208x); the "
                 "gap widens with corpus size")
    emit_table("scaling", "Scaling: flows vs clusters by corpus size", lines)

    flows = [results[size].flow_count for size in _SIZES]
    clusters = [results[size].cluster_count for size in _SIZES]
    assert flows == sorted(flows), "flows grow with the corpus"
    # Clusters are bounded by distinct instruction pairs: near-saturating.
    assert clusters[-1] <= clusters[0] * 3
    # The compression ratio must widen as the corpus grows.
    assert flows[-1] / clusters[-1] > flows[0] / clusters[0]
