"""Corpus-size scaling: how analysis artifacts grow with corpus size,
and how the execution stage scales with the shard pool.

Not a paper table, but the scaling behaviour behind the paper's §6.5
numbers: candidate flows grow roughly quadratically with the corpus
(every writer can pair with every reader of a shared address), while
clustered test-case counts grow far slower — that gap *is* the value of
clustering (the 234M -> 1.13M compression of Table 4).

The benchmark times the full generation stage (profiling + analysis) at
the middle corpus size.  ``test_shard_scaling`` sweeps the execution
stage over worker counts and shard modes (ISSUE 6, satellite 2).
"""

import os

from repro import CampaignConfig, Kit, MachineConfig, linux_5_13
from repro.core import (
    Profiler,
    TestCaseGenerator,
    default_specification,
    strategy_by_name,
)
from repro.corpus import build_corpus
from repro.vm import Machine, fork_available

from benchmarks.support import emit_table

_SIZES = (50, 100, 200)


def _generation_stats(size: int):
    corpus = build_corpus(size, seed=1)
    machine = Machine(MachineConfig(bugs=linux_5_13()))
    profiles = Profiler(machine).profile_corpus(corpus)
    generator = TestCaseGenerator(corpus, profiles, default_specification())
    result = generator.generate(strategy_by_name("df-ia"))
    return result


def test_scaling_corpus_size(benchmark):
    results = {size: _generation_stats(size) for size in _SIZES}
    benchmark.pedantic(_generation_stats, args=(_SIZES[1],), rounds=1,
                       iterations=1)

    lines = [f"{'corpus':>7} {'flows (DF)':>11} {'DF-IA clusters':>15} "
             f"{'compression':>12}",
             "-" * 50]
    for size in _SIZES:
        result = results[size]
        ratio = (result.flow_count / result.cluster_count
                 if result.cluster_count else 0.0)
        lines.append(f"{size:>7} {result.flow_count:>11} "
                     f"{result.cluster_count:>15} {ratio:>11.1f}x")
    lines.append("")
    lines.append("paper: 234.63M flows -> 1.13M DF-IA clusters (208x); the "
                 "gap widens with corpus size")
    emit_table("scaling", "Scaling: flows vs clusters by corpus size", lines)

    flows = [results[size].flow_count for size in _SIZES]
    clusters = [results[size].cluster_count for size in _SIZES]
    assert flows == sorted(flows), "flows grow with the corpus"
    # Clusters are bounded by distinct instruction pairs: near-saturating.
    assert clusters[-1] <= clusters[0] * 3
    # The compression ratio must widen as the corpus grows.
    assert flows[-1] / clusters[-1] > flows[0] / clusters[0]


def test_shard_scaling(bench_corpus, benchmark):
    """Execution-stage sweep: worker counts by shard modes.

    Descriptive, not a gate (the hardware-conditional assertions live in
    ``bench_regression_gate.test_shard_pool_gate``): records how the
    execution stage responds to the pool on *this* host, and always
    asserts every configuration finds the same bugs and leaks nothing.
    At simulated-kernel case costs (~1 ms/case) fork startup dominates,
    so process rows only pull ahead on workloads whose cases dwarf the
    ~10 ms/shard spawn+boot cost — exactly what the table makes visible.
    """
    cpus = os.cpu_count() or 1
    counts = sorted({1, 2, 4, cpus})
    modes = ["thread"] + (["process"] if fork_available() else [])

    def campaign(mode, workers):
        config = CampaignConfig(machine=MachineConfig(bugs=linux_5_13()),
                                corpus=list(bench_corpus), strategy="df-ia",
                                workers=workers, shard_mode=mode)
        return Kit(config).run()

    runs = {(mode, workers): campaign(mode, workers)
            for mode in modes for workers in counts}
    benchmark.pedantic(campaign, args=(modes[-1], counts[-1]),
                       rounds=1, iterations=1)

    lines = [f"{'mode':<9} {'workers':>7} {'exec (ms)':>10} "
             f"{'cases/s':>9} {'stolen':>7} {'shards':>7}",
             "-" * 56]
    for (mode, workers), run in sorted(runs.items()):
        stats = run.stats
        lines.append(
            f"{mode:<9} {stats.execution_workers:>7} "
            f"{stats.execution_seconds * 1e3:>10.1f} "
            f"{stats.executions_per_second():>9.0f} "
            f"{stats.jobs_stolen:>7} {stats.shards_spawned:>7}")
    lines.append("")
    lines.append(f"host: {cpus} cpu(s); every configuration must report "
                 f"the identical bug set and leave /dev/shm empty")
    emit_table("shard_scaling",
               "Execution-stage scaling: workers x shard mode", lines)

    reference = sorted(runs[("thread", counts[0])].bugs_found())
    for (mode, workers), run in runs.items():
        assert sorted(run.bugs_found()) == reference, \
            f"{mode} x{workers} diverged from the reference bug set"
        assert run.stats.cases_executed \
            == runs[("thread", counts[0])].stats.cases_executed
    if os.path.isdir("/dev/shm"):
        assert not [entry for entry in os.listdir("/dev/shm")
                    if entry.startswith("kitshm")], "leaked shm segments"
